"""Simulator throughput: simulated instructions per second.

Two benchmarks, both with preparation hoisted out of the timed region
so the numbers track the *execution engine* and not the assembler or
transform front end:

* ``test_fast_engine_throughput`` — the predecoded fast engine over the
  Figure 2 suite (every kernel on all three Figure 2 machines), with
  stepped-interpreter and trace-batched reference runs recording the
  plain / fast / traced engine matrix;
* ``test_zolc_fast_path_throughput`` — every Figure 2 kernel on the
  three ZOLC machines, benchmarking the *trace-batched* tier against
  the compiled-plan fast path, the legacy per-retirement ``on_retire``
  fast loop (a shim port that hides ``zolc_plan``) and the unpredecoded
  stepped interpreter.  Two regression gates fail CI: the compiled-plan
  fast path must stay >= 1.5x the stepped interpreter, and the traced
  tier must stay ahead of the fast path it batches over.

Both write their steps/sec into ``BENCH_throughput.json`` at the repo
root, so the perf trajectory is recorded alongside the code.

Run with::

    pytest benchmarks/bench_throughput.py --benchmark-only -s

Set ``BENCH_SMOKE=1`` for the single-round smoke mode CI uses.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.eval.machines import (
    FIGURE2_MACHINES,
    M_UZOLC,
    M_ZOLC_FULL,
    M_ZOLC_LITE,
)
from repro.workloads.suite import FIGURE2_BENCHMARKS

REPO_ROOT = Path(__file__).resolve().parent.parent

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
ROUNDS = 1 if SMOKE else 3
WARMUP_ROUNDS = 0 if SMOKE else 1

#: Smoke runs (single round, no warmup) must not clobber the
#: version-controlled perf-trajectory record with noisy numbers; they
#: write a sibling file instead (git-ignored, uploaded by CI).
BENCH_JSON = REPO_ROOT / ("BENCH_throughput.smoke.json" if SMOKE
                          else "BENCH_throughput.json")

ZOLC_MACHINES = (M_UZOLC, M_ZOLC_LITE, M_ZOLC_FULL)

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def bench_json_writer():
    """Collects every benchmark's numbers and writes BENCH_throughput.json.

    Merges into the existing file rather than replacing it, so a
    filtered run (``-k zolc``) updates only its own section instead of
    silently dropping the other benchmarks' recorded history.
    """
    yield _RESULTS
    if _RESULTS:
        payload: dict = {}
        if BENCH_JSON.exists():
            try:
                payload = json.loads(BENCH_JSON.read_text())
            except (OSError, json.JSONDecodeError):
                payload = {}
        payload["generated_by"] = "benchmarks/bench_throughput.py"
        payload["smoke"] = SMOKE
        payload.update(_RESULTS)
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="module")
def prepared_suite(request):
    reg = request.getfixturevalue("reg")
    return [(machine.prepare(reg.get(name).source))
            for name in FIGURE2_BENCHMARKS
            for machine in FIGURE2_MACHINES]


@pytest.fixture(scope="module")
def prepared_zolc_suite(request):
    reg = request.getfixturevalue("reg")
    return [(machine.prepare(reg.get(name).source))
            for name in FIGURE2_BENCHMARKS
            for machine in ZOLC_MACHINES]


def _simulate_all(prepared, engine, planless=False):
    from repro.cpu import PlanlessZolcPort

    total = 0
    for kernel in prepared:
        simulator = kernel.make_simulator()
        if planless and simulator.zolc is not None:
            simulator.zolc = PlanlessZolcPort(simulator.zolc)
        simulator.run(engine=engine)
        total += simulator.stats.instructions
    return total


def _timed(prepared, engine, planless=False):
    t0 = time.perf_counter()
    total = _simulate_all(prepared, engine, planless=planless)
    return total, time.perf_counter() - t0


@pytest.mark.repro
def test_fast_engine_throughput(benchmark, prepared_suite):
    """Steps/second of the fast engine across the Figure 2 suite."""
    total = benchmark.pedantic(_simulate_all, args=(prepared_suite, "fast"),
                               rounds=ROUNDS, iterations=1,
                               warmup_rounds=WARMUP_ROUNDS)
    mean = benchmark.stats.stats.mean
    fast_ips = round(total / mean)
    benchmark.extra_info["simulated_instructions"] = total
    benchmark.extra_info["instructions_per_second"] = fast_ips

    # Reference runs of the stepped interpreter and the trace-batched
    # tier on the same work: the recorded plain / fast / traced matrix.
    step_total, step_elapsed = _timed(prepared_suite, "step")
    assert step_total == total  # both engines retire the same stream
    # Warm run first so the traced number reflects steady state (region
    # code is compiled once per program and cached).
    _simulate_all(prepared_suite, "traced")
    traced_total, traced_elapsed = _timed(prepared_suite, "traced")
    assert traced_total == total
    speedup = (step_elapsed / mean) if mean else float("inf")
    stepped_ips = round(step_total / step_elapsed)
    traced_ips = round(traced_total / traced_elapsed)
    benchmark.extra_info["stepped_instructions_per_second"] = stepped_ips
    benchmark.extra_info["traced_instructions_per_second"] = traced_ips
    benchmark.extra_info["speedup_vs_step_engine"] = round(speedup, 2)
    _RESULTS["figure2"] = {
        "machines": [m.name for m in FIGURE2_MACHINES],
        "simulated_instructions": total,
        "fast_instructions_per_second": fast_ips,
        "stepped_instructions_per_second": stepped_ips,
        "traced_instructions_per_second": traced_ips,
        "fast_speedup_vs_step": round(speedup, 2),
        "traced_speedup_vs_fast": round(fast_ips and traced_ips / fast_ips,
                                        2),
    }
    # Loose floor: the predecoded engine must clearly beat the stepped
    # interpreter even on a noisy, loaded CI box.
    assert speedup > 1.5


@pytest.mark.repro
def test_zolc_fast_path_throughput(benchmark, prepared_zolc_suite):
    """Steps/second on the ZOLC machines: traced tier vs the rest.

    Benchmarks the trace-batched tier and records four engines over
    identical work — traced, the compiled-plan fast path, the legacy
    per-retirement fast loop, and the unpredecoded stepped interpreter.
    Two CI regression gates: the plan fast path must stay >= 1.5x the
    stepped interpreter, and the traced tier must not fall behind the
    fast path it batches over.
    """
    # Always warm up the traced benchmark (even in smoke mode): the
    # first pass compiles each program's region code, which is cached
    # on the Program and amortised across every later simulation — the
    # steady state is what the gate measures.
    total = benchmark.pedantic(_simulate_all,
                               args=(prepared_zolc_suite, "traced"),
                               rounds=ROUNDS, iterations=1,
                               warmup_rounds=max(WARMUP_ROUNDS, 1))
    mean = benchmark.stats.stats.mean
    traced_ips = round(total / mean)

    plan_total, plan_elapsed = _timed(prepared_zolc_suite, "fast")
    legacy_total, legacy_elapsed = _timed(prepared_zolc_suite, "fast",
                                          planless=True)
    step_total, step_elapsed = _timed(prepared_zolc_suite, "step")
    assert plan_total == legacy_total == step_total == total

    plan_ips = round(plan_total / plan_elapsed)
    legacy_ips = round(legacy_total / legacy_elapsed)
    stepped_ips = round(step_total / step_elapsed)
    plan_vs_step = step_elapsed / plan_elapsed
    traced_vs_step = (step_elapsed / mean) if mean else float("inf")
    traced_vs_plan = (plan_elapsed / mean) if mean else float("inf")

    benchmark.extra_info["simulated_instructions"] = total
    benchmark.extra_info["traced_instructions_per_second"] = traced_ips
    benchmark.extra_info["plan_instructions_per_second"] = plan_ips
    benchmark.extra_info["legacy_fast_instructions_per_second"] = legacy_ips
    benchmark.extra_info["stepped_instructions_per_second"] = stepped_ips
    benchmark.extra_info["traced_speedup_vs_step"] = round(traced_vs_step, 2)
    benchmark.extra_info["traced_speedup_vs_plan_fast"] = \
        round(traced_vs_plan, 2)
    _RESULTS["zolc"] = {
        "machines": [m.name for m in ZOLC_MACHINES],
        "simulated_instructions": total,
        "traced_instructions_per_second": traced_ips,
        "plan_instructions_per_second": plan_ips,
        "legacy_fast_instructions_per_second": legacy_ips,
        "stepped_instructions_per_second": stepped_ips,
        "plan_speedup_vs_step": round(plan_vs_step, 2),
        "plan_speedup_vs_legacy_fast": round(legacy_elapsed / plan_elapsed,
                                             2),
        "traced_speedup_vs_step": round(traced_vs_step, 2),
        "traced_speedup_vs_plan_fast": round(traced_vs_plan, 2),
    }
    # The ZOLC fast path must stay well ahead of the unpredecoded
    # stepped interpreter (>= 1.5x steps/sec, the acceptance floor; the
    # measured ratio on an idle host is > 3x).
    assert plan_vs_step > 1.5, (
        f"ZOLC compiled-plan fast path is only {plan_vs_step:.2f}x the "
        f"unpredecoded engine")
    # And the trace-batched tier must keep paying for itself.  The
    # steady-state ratio on an idle host is >= 1.4x (recorded in
    # BENCH_throughput.json); the gate allows generous noise headroom —
    # smoke mode measures a single round — while still catching a real
    # regression that drops batching back to per-retirement speed.
    assert traced_vs_plan > 0.9, (
        f"traced tier is only {traced_vs_plan:.2f}x the compiled-plan "
        f"fast path")
