"""Simulator throughput: simulated instructions per second.

Measures the predecoded fast engine over the Figure 2 suite (every
kernel on all three Figure 2 machines) with preparation hoisted out of
the timed region, so the number tracks the *execution engine* and not
the assembler/transform front end.  A stepped-interpreter run of the
same work records the speedup in ``extra_info`` so the BENCH json
history shows the fast engine earning its keep.

Run with::

    pytest benchmarks/bench_throughput.py --benchmark-only -s
"""

from __future__ import annotations

import time

import pytest

from repro.eval.machines import FIGURE2_MACHINES
from repro.workloads.suite import FIGURE2_BENCHMARKS


@pytest.fixture(scope="module")
def prepared_suite(request):
    reg = request.getfixturevalue("reg")
    return [(machine.prepare(reg.get(name).source))
            for name in FIGURE2_BENCHMARKS
            for machine in FIGURE2_MACHINES]


def _simulate_all(prepared, engine):
    total = 0
    for kernel in prepared:
        simulator = kernel.make_simulator()
        simulator.run(engine=engine)
        total += simulator.stats.instructions
    return total


@pytest.mark.repro
def test_fast_engine_throughput(benchmark, prepared_suite):
    """Steps/second of the fast engine across the Figure 2 suite."""
    total = benchmark.pedantic(_simulate_all, args=(prepared_suite, "fast"),
                               rounds=3, iterations=1, warmup_rounds=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["simulated_instructions"] = total
    benchmark.extra_info["instructions_per_second"] = round(total / mean)

    # One reference run of the legacy stepped interpreter on the same
    # work, for the recorded speedup.
    t0 = time.perf_counter()
    step_total = _simulate_all(prepared_suite, "step")
    step_elapsed = time.perf_counter() - t0
    assert step_total == total  # both engines retire the same stream
    speedup = (step_elapsed / mean) if mean else float("inf")
    benchmark.extra_info["stepped_instructions_per_second"] = round(
        step_total / step_elapsed)
    benchmark.extra_info["speedup_vs_step_engine"] = round(speedup, 2)
    # Loose floor: the predecoded engine must clearly beat the stepped
    # interpreter even on a noisy, loaded CI box.
    assert speedup > 1.5
