"""Simulator throughput: simulated instructions per second.

Two benchmarks, both with preparation hoisted out of the timed region
so the numbers track the *execution engine* and not the assembler or
transform front end:

* ``test_fast_engine_throughput`` — the traced tier over the Figure 2
  suite (every kernel on all three Figure 2 machines), with fast-engine
  and stepped-interpreter reference runs recording the plain / fast /
  traced engine matrix;
* ``test_zolc_fast_path_throughput`` — every Figure 2 kernel plus
  ``viterbi`` on the three ZOLC machines, benchmarking the
  **loop-resident** traced tier with the guard-based trace JIT
  (fire→re-entry chaining over regions *and* traces, the ``auto``
  default) against five references on identical work: the no-JIT
  loop-resident tier (PR 5's algorithm), the unchained region tier
  (PR 4's), the compiled-plan fast path, the legacy per-retirement
  ``on_retire`` fast loop (a shim port that hides ``zolc_plan``) and
  the unpredecoded stepped interpreter — the six recorded engine
  columns, plus per-kernel trace/chain residency.  Four regression
  gates fail CI: the compiled-plan fast path must stay >= 1.5x the
  stepped interpreter, the region tier must stay ahead of the fast
  path it batches over, the loop-resident tier must not fall behind
  the region tier it chains over, and the trace-JIT tier must stay
  >= 1.25x the no-JIT loop-resident tier on the branchy kernels
  (best-of-3 per column; the other kernels have no trace candidates,
  so a suite-wide ratio would measure mostly noise);
* ``test_batch_backend_throughput`` — **cells/second** of the batch
  execution backend (prepare once per group, advance N simulators in
  lockstep through the batch engine tier) against the serial backend
  on identical cell lists at N = 1 / 16 / 64 cells per (kernel,
  machine) group.  A representative ZOLC-kernel subset keeps the
  N = 64 column affordable in smoke mode; the same subset is used at
  every N and in full runs, so the recorded ratios are comparable.
  The gates: at N >= 16 the batch backend must deliver measurably
  more cells/sec than serial, and at N = 1 it must track serial
  (>= 0.95x) — groups below ``BatchBackend.min_group`` route through
  the scalar per-cell path instead of paying lockstep bookkeeping
  they cannot amortise.

Where the numbers land depends on the invocation (see
``benchmarks/conftest.py``): smoke runs write
``BENCH_throughput.smoke.json``, full runs write
``BENCH_throughput.local.json``, and only a full run with
``--write-root`` refreshes the committed ``BENCH_throughput.json``
perf-trajectory record.

Run with::

    pytest benchmarks/bench_throughput.py --benchmark-only -s

Set ``BENCH_SMOKE=1`` for the single-round smoke mode CI uses; add
``--write-root`` (full runs only) to refresh the committed baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cpu.engine import run_traced
from repro.cpu.simulator import DEFAULT_MAX_STEPS
from repro.eval.machines import (
    FIGURE2_MACHINES,
    M_UZOLC,
    M_ZOLC_FULL,
    M_ZOLC_LITE,
)
from repro.workloads.suite import FIGURE2_BENCHMARKS

REPO_ROOT = Path(__file__).resolve().parent.parent

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
ROUNDS = 1 if SMOKE else 3
WARMUP_ROUNDS = 0 if SMOKE else 1

ZOLC_MACHINES = (M_UZOLC, M_ZOLC_LITE, M_ZOLC_FULL)

# The ZOLC bench matrix: the Figure 2 suite plus ``viterbi`` — a
# branchy-body kernel outside the paper's figure set, included so the
# trace-JIT coverage claim is measured on it without touching the
# FIGURE2_BENCHMARKS paper fact.
ZOLC_BENCH_KERNELS = FIGURE2_BENCHMARKS + ("viterbi",)

# The subset whose watched bodies contain forward branches — the trace
# JIT's target set within the bench matrix.  The JIT acceptance gate is
# measured here: the remaining kernels have no trace candidates and run
# identical code with the JIT on or off, so a suite-wide ratio would
# dilute toward 1.0 and measure mostly scheduler noise.
BRANCHY_BENCH_KERNELS = ("me_fss", "me_tss", "viterbi")

_RESULTS: dict[str, dict] = {}


def _bench_json_path(config) -> Path:
    """Resolve the output file for this invocation (see conftest)."""
    if SMOKE:
        return REPO_ROOT / "BENCH_throughput.smoke.json"
    if config.getoption("--write-root"):
        return REPO_ROOT / "BENCH_throughput.json"
    return REPO_ROOT / "BENCH_throughput.local.json"


@pytest.fixture(scope="module", autouse=True)
def bench_json_writer(request):
    """Collects every benchmark's numbers and writes the bench JSON.

    Merges into the existing file rather than replacing it, so a
    filtered run (``-k zolc``) updates only its own section instead of
    silently dropping the other benchmarks' recorded history.
    """
    yield _RESULTS
    if _RESULTS:
        bench_json = _bench_json_path(request.config)
        payload: dict = {}
        if bench_json.exists():
            try:
                payload = json.loads(bench_json.read_text())
            except (OSError, json.JSONDecodeError):
                payload = {}
        payload["generated_by"] = "benchmarks/bench_throughput.py"
        payload["smoke"] = SMOKE
        payload.update(_RESULTS)
        bench_json.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="module")
def prepared_suite(request):
    reg = request.getfixturevalue("reg")
    return [(machine.prepare(reg.get(name).source))
            for name in FIGURE2_BENCHMARKS
            for machine in FIGURE2_MACHINES]


@pytest.fixture(scope="module")
def prepared_zolc_suite(request):
    reg = request.getfixturevalue("reg")
    return [(machine.prepare(reg.get(name).source))
            for name in ZOLC_BENCH_KERNELS
            for machine in ZOLC_MACHINES]


def _simulate_all(prepared, engine, planless=False, chain=True, jit=True):
    from repro.cpu import PlanlessZolcPort

    total = 0
    for kernel in prepared:
        simulator = kernel.make_simulator()
        if planless and simulator.zolc is not None:
            simulator.zolc = PlanlessZolcPort(simulator.zolc)
        if engine == "traced" and not (chain and jit):
            # The unchained region tier (PR 4's traced algorithm) and
            # the no-JIT loop-resident tier (PR 5's): internal API,
            # reached through the benchmark only.
            predecoded = simulator._ensure_predecoded()
            run_traced(simulator, DEFAULT_MAX_STEPS, predecoded,
                       chain=chain, jit=jit)
        else:
            simulator.run(engine=engine)
        total += simulator.stats.instructions
    return total


def _timed(prepared, engine, planless=False, chain=True, jit=True):
    t0 = time.perf_counter()
    total = _simulate_all(prepared, engine, planless=planless, chain=chain,
                          jit=jit)
    return total, time.perf_counter() - t0


def _zolc_residency(prepared):
    """Per-kernel trace/chain residency on the default traced tier.

    The fraction of retired instructions executed inside a compiled
    trace, and inside a loop-resident chain (region or trace chains),
    per (kernel, machine) cell of the ZOLC bench matrix.
    """
    residency: dict[str, dict] = {}
    cells = iter(prepared)
    for name in ZOLC_BENCH_KERNELS:
        for machine in ZOLC_MACHINES:
            simulator = next(cells).make_simulator()
            simulator.run(engine="traced")
            total = simulator.stats.instructions or 1
            residency[f"{name}@{machine.name}"] = {
                "instructions": simulator.stats.instructions,
                "trace_residency":
                    round(simulator.trace_resident_steps / total, 3),
                "chain_residency":
                    round(simulator.chain_resident_steps / total, 3),
            }
    return residency


@pytest.mark.repro
def test_fast_engine_throughput(benchmark, prepared_suite):
    """Steps/second of the traced tier across the Figure 2 suite.

    The forced warmup round compiles each program's region code (cached
    on the Program), so the measured rounds reflect steady state.
    """
    total = benchmark.pedantic(_simulate_all,
                               args=(prepared_suite, "traced"),
                               rounds=ROUNDS, iterations=1,
                               warmup_rounds=max(WARMUP_ROUNDS, 1))
    mean = benchmark.stats.stats.mean
    traced_ips = round(total / mean)
    benchmark.extra_info["simulated_instructions"] = total
    benchmark.extra_info["instructions_per_second"] = traced_ips

    # Reference runs of the fast engine and the stepped interpreter on
    # the same work: the recorded plain / fast / traced matrix.
    fast_total, fast_elapsed = _timed(prepared_suite, "fast")
    step_total, step_elapsed = _timed(prepared_suite, "step")
    assert fast_total == step_total == total  # same retirement stream
    fast_ips = round(fast_total / fast_elapsed)
    stepped_ips = round(step_total / step_elapsed)
    fast_speedup = step_elapsed / fast_elapsed
    traced_speedup = (step_elapsed / mean) if mean else float("inf")
    benchmark.extra_info["fast_instructions_per_second"] = fast_ips
    benchmark.extra_info["stepped_instructions_per_second"] = stepped_ips
    benchmark.extra_info["speedup_vs_step_engine"] = round(traced_speedup, 2)
    _RESULTS["figure2"] = {
        "machines": [m.name for m in FIGURE2_MACHINES],
        "simulated_instructions": total,
        "fast_instructions_per_second": fast_ips,
        "stepped_instructions_per_second": stepped_ips,
        "traced_instructions_per_second": traced_ips,
        "fast_speedup_vs_step": round(fast_speedup, 2),
        "traced_speedup_vs_fast": round(fast_ips and traced_ips / fast_ips,
                                        2),
    }
    # Loose floor: the predecoded engine must clearly beat the stepped
    # interpreter even on a noisy, loaded CI box.
    assert fast_speedup > 1.5


@pytest.mark.repro
def test_zolc_fast_path_throughput(benchmark, prepared_zolc_suite):
    """Steps/second on the ZOLC machines: loop-resident tier vs the rest.

    Benchmarks the loop-resident traced tier with the guard-based trace
    JIT (the ``auto`` default) and records six engine columns over
    identical work — trace-JIT loop-resident, no-JIT loop-resident
    (PR 5's algorithm), the unchained region tier (PR 4's), the
    compiled-plan fast path, the legacy per-retirement fast loop, and
    the unpredecoded stepped interpreter.  Four CI regression gates:
    the plan fast path must stay >= 1.5x the stepped interpreter, the
    region tier must not fall behind the fast path it batches over,
    the loop-resident tier must not fall behind the region tier it
    chains over, and the trace-JIT tier must stay >= 1.25x the no-JIT
    loop-resident tier on the branchy kernels (best-of-3 per column).
    Per-kernel trace/chain residency is recorded alongside the
    columns.
    """
    # Always warm up the traced benchmark (even in smoke mode): the
    # first pass compiles each program's region and chain code, which
    # is cached on the Program and amortised across every later
    # simulation — the steady state is what the gate measures.
    total = benchmark.pedantic(_simulate_all,
                               args=(prepared_zolc_suite, "traced"),
                               rounds=ROUNDS, iterations=1,
                               warmup_rounds=max(WARMUP_ROUNDS, 1))
    mean = benchmark.stats.stats.mean
    resident_ips = round(total / mean)

    # The no-JIT loop-resident tier (PR 5's algorithm), suite-wide —
    # recorded as a throughput column alongside the rest.
    nojit_total, nojit_elapsed = _timed(prepared_zolc_suite, "traced",
                                        jit=False)
    traced_total, traced_elapsed = _timed(prepared_zolc_suite, "traced",
                                          chain=False, jit=False)
    plan_total, plan_elapsed = _timed(prepared_zolc_suite, "fast")
    legacy_total, legacy_elapsed = _timed(prepared_zolc_suite, "fast",
                                          planless=True)
    step_total, step_elapsed = _timed(prepared_zolc_suite, "step")
    assert nojit_total == traced_total == plan_total == legacy_total \
        == step_total == total

    traced_ips = round(traced_total / traced_elapsed)
    nojit_ips = round(nojit_total / nojit_elapsed)
    plan_ips = round(plan_total / plan_elapsed)
    legacy_ips = round(legacy_total / legacy_elapsed)
    stepped_ips = round(step_total / step_elapsed)
    plan_vs_step = step_elapsed / plan_elapsed
    traced_vs_plan = plan_elapsed / traced_elapsed
    resident_vs_step = (step_elapsed / mean) if mean else float("inf")
    resident_vs_traced = (traced_elapsed / mean) if mean else float("inf")

    # The trace-JIT gate, measured on the branchy subset where the JIT
    # acts (identical work and hardware in both columns, so the ratio
    # is box-independent).  Best-of-3 on each column keeps one
    # scheduler hiccup from failing the gate — same treatment as the
    # N=1 batch-backend floor.
    branchy = [p for name, p in
               zip([n for n in ZOLC_BENCH_KERNELS
                    for _ in ZOLC_MACHINES], prepared_zolc_suite)
               if name in BRANCHY_BENCH_KERNELS]
    _timed(branchy, "traced")  # warm the trace/chain code caches
    jit_elapsed = min(_timed(branchy, "traced")[1] for _ in range(3))
    branchy_nojit = min(_timed(branchy, "traced", jit=False)[1]
                        for _ in range(3))
    jit_vs_nojit = (branchy_nojit / jit_elapsed) if jit_elapsed \
        else float("inf")

    benchmark.extra_info["simulated_instructions"] = total
    benchmark.extra_info["loop_resident_instructions_per_second"] = \
        resident_ips
    benchmark.extra_info["traced_instructions_per_second"] = traced_ips
    benchmark.extra_info["plan_instructions_per_second"] = plan_ips
    benchmark.extra_info["legacy_fast_instructions_per_second"] = legacy_ips
    benchmark.extra_info["stepped_instructions_per_second"] = stepped_ips
    benchmark.extra_info["loop_resident_speedup_vs_step"] = \
        round(resident_vs_step, 2)
    benchmark.extra_info["loop_resident_speedup_vs_traced"] = \
        round(resident_vs_traced, 2)
    _RESULTS["zolc"] = {
        "machines": [m.name for m in ZOLC_MACHINES],
        "kernels": list(ZOLC_BENCH_KERNELS),
        "simulated_instructions": total,
        "loop_resident_instructions_per_second": resident_ips,
        "loop_resident_nojit_instructions_per_second": nojit_ips,
        "traced_instructions_per_second": traced_ips,
        "plan_instructions_per_second": plan_ips,
        "legacy_fast_instructions_per_second": legacy_ips,
        "stepped_instructions_per_second": stepped_ips,
        "plan_speedup_vs_step": round(plan_vs_step, 2),
        "plan_speedup_vs_legacy_fast": round(legacy_elapsed / plan_elapsed,
                                             2),
        "traced_speedup_vs_plan_fast": round(traced_vs_plan, 2),
        "loop_resident_speedup_vs_step": round(resident_vs_step, 2),
        "loop_resident_speedup_vs_traced": round(resident_vs_traced, 2),
        "trace_jit_gate_kernels": list(BRANCHY_BENCH_KERNELS),
        "trace_jit_speedup_vs_nojit": round(jit_vs_nojit, 2),
        "residency": _zolc_residency(prepared_zolc_suite),
    }
    # The ZOLC fast path must stay well ahead of the unpredecoded
    # stepped interpreter (>= 1.5x steps/sec, the acceptance floor; the
    # measured ratio on an idle host is > 3x).
    assert plan_vs_step > 1.5, (
        f"ZOLC compiled-plan fast path is only {plan_vs_step:.2f}x the "
        f"unpredecoded engine")
    # The region tier must keep paying for itself over the fast path it
    # batches.  Generous noise headroom: smoke mode measures a single
    # round, and the gate exists to catch a real regression that drops
    # batching back to per-retirement speed.
    assert traced_vs_plan > 0.9, (
        f"region tier is only {traced_vs_plan:.2f}x the compiled-plan "
        f"fast path")
    # And the loop-resident tier must never fall behind the region tier
    # it chains over.  The steady-state ratio on an idle host is ~1.02x
    # suite-wide (~1.08x on chain-heavy kernels), so this floor is set
    # with generous jitter headroom for the single-round smoke
    # comparison of two back-to-back traced runs — it exists to catch a
    # chain regression that makes residency a real loss, not to police
    # noise.
    assert resident_vs_traced > 0.8, (
        f"loop-resident tier is only {resident_vs_traced:.2f}x the "
        f"unchained region tier")
    # The trace-JIT acceptance gate: on the branchy kernels the JIT
    # tier must run >= 1.25x the no-JIT loop-resident tier on identical
    # work (the measured steady-state ratio on an idle host is ~1.5-
    # 1.7x).  Comparing two in-run columns keeps the gate
    # box-independent.
    assert jit_vs_nojit > 1.25, (
        f"trace-JIT tier is only {jit_vs_nojit:.2f}x the no-JIT "
        f"loop-resident tier on the branchy kernels")


# A representative slice of the Figure 2 suite for the batch-backend
# benchmark: short and long kernels, single and nested loops, a motion
# estimator.  Fixed (and shared by smoke and full runs) so the recorded
# cells/sec ratios stay comparable while the N = 64 column stays
# affordable in CI's single-round smoke mode.
BATCH_KERNELS = ("vec_sum", "fir", "matmul", "crc32", "me_tss")
BATCH_SIZES = (1, 16, 64)


def _batch_cells(n: int) -> list:
    """N cells per (kernel, ZOLC machine) group, sweeping the pipeline.

    The per-cell ``load_use_stall`` sweep is the batch backend's
    intended workload: one shared architectural trajectory, per-cell
    timing, prepared once per group.
    """
    from repro.cpu.pipeline import PipelineConfig
    from repro.experiments.backends import Cell

    return [Cell(kernel_name=name, machine=machine,
                 pipeline=PipelineConfig(load_use_stall=i % 4),
                 max_steps=DEFAULT_MAX_STEPS)
            for name in BATCH_KERNELS
            for machine in ZOLC_MACHINES
            for i in range(n)]


def _timed_backend(backend_name: str, cells: list):
    from repro.experiments.backends import get_backend

    t0 = time.perf_counter()
    results = get_backend(backend_name).run_cells(cells)
    return results, time.perf_counter() - t0


@pytest.mark.repro
def test_batch_backend_throughput(benchmark):
    """Cells/second: the batch backend vs the serial backend.

    Times both backends on identical cell lists at N = 1 / 16 / 64
    cells per (kernel, machine) group.  The serial backend prepares
    (assemble + transform + codegen) once *per cell*; the batch backend
    prepares once per group and steps the group's simulators in
    lockstep, so its advantage grows with N.  The gate requires the
    N = 16 batch run to beat serial on cells/sec (measured ~2x on an
    idle host; the floor leaves smoke-mode noise headroom), and the
    N = 16 / N = 64 speedups are recorded for the trajectory gate.
    """
    cells16 = _batch_cells(16)
    benchmark.pedantic(lambda: _timed_backend("batch", cells16),
                       rounds=ROUNDS, iterations=1,
                       warmup_rounds=WARMUP_ROUNDS)
    batch16_elapsed = benchmark.stats.stats.mean
    batch16_cps = round(len(cells16) / batch16_elapsed, 1)

    serial16, serial16_elapsed = _timed_backend("serial", cells16)
    batch16, _ = _timed_backend("batch", cells16)
    # Backend bit-identity on the benchmarked workload: grouping and
    # lockstep must never change a measurement.
    assert ([r.record() for r in batch16]
            == [r.record() for r in serial16])
    serial16_cps = round(len(cells16) / serial16_elapsed, 1)
    speedup16 = serial16_elapsed / batch16_elapsed

    # N = 1 routes through the identical scalar path on both backends,
    # so the comparison measures routing overhead only; best-of-3 keeps
    # scheduler noise from failing a gate over identical code.
    cells1 = _batch_cells(1)
    serial1_elapsed = min(_timed_backend("serial", cells1)[1]
                          for _ in range(3))
    batch1_elapsed = min(_timed_backend("batch", cells1)[1]
                         for _ in range(3))
    cells64 = _batch_cells(64)
    _, serial64_elapsed = _timed_backend("serial", cells64)
    _, batch64_elapsed = _timed_backend("batch", cells64)
    speedup64 = serial64_elapsed / batch64_elapsed

    benchmark.extra_info["cells_n16"] = len(cells16)
    benchmark.extra_info["batch_cells_per_second_n16"] = batch16_cps
    benchmark.extra_info["batch_speedup_vs_serial_n16"] = \
        round(speedup16, 2)
    _RESULTS["batch"] = {
        "machines": [m.name for m in ZOLC_MACHINES],
        "kernels": list(BATCH_KERNELS),
        "cells_per_group": list(BATCH_SIZES),
        "serial_cells_per_second_n1":
            round(len(cells1) / serial1_elapsed, 1),
        "batch_cells_per_second_n1":
            round(len(cells1) / batch1_elapsed, 1),
        "serial_cells_per_second_n16": serial16_cps,
        "batch_cells_per_second_n16": batch16_cps,
        "serial_cells_per_second_n64":
            round(len(cells64) / serial64_elapsed, 1),
        "batch_cells_per_second_n64":
            round(len(cells64) / batch64_elapsed, 1),
        # Gated at >= 0.95x: single-cell groups route through the
        # scalar per-cell path (BatchBackend.min_group), so lockstep
        # bookkeeping can no longer tax unamortised groups.
        "batch_vs_serial_ratio_n1":
            round(serial1_elapsed / batch1_elapsed, 2),
        "batch_speedup_vs_serial_n16": round(speedup16, 2),
        "batch_speedup_vs_serial_n64": round(speedup64, 2),
    }
    # The acceptance floor: batching a >= 16-cell sweep must deliver
    # measurably more cells/sec than running the sweep serially.  The
    # measured ratio on an idle host is ~2x (prepare amortisation plus
    # shared fetch/dispatch), so 1.1x leaves generous noise headroom.
    assert speedup16 > 1.1, (
        f"batch backend is only {speedup16:.2f}x the serial backend "
        f"at 16 cells/group")
    assert speedup64 > speedup16 * 0.5, (
        f"batch advantage collapsed at 64 cells/group "
        f"({speedup64:.2f}x vs {speedup16:.2f}x at 16)")
    # Small groups must not pay for lockstep they cannot amortise: the
    # batch backend routes groups below ``min_group`` cells to the
    # scalar path, so N = 1 must track serial (0.95x leaves noise
    # headroom for two back-to-back runs of the same code path).
    assert serial1_elapsed / batch1_elapsed >= 0.95, (
        f"batch backend at 1 cell/group is only "
        f"{serial1_elapsed / batch1_elapsed:.2f}x serial")
