"""A5 — how much of the gain requires the *zero-cycle* task switch?

The paper's central claim is that task switching costs nothing (vs the
DSP56300's 5-cycle overhead "applied even to the innermost loops", §1).
This ablation re-runs a subset of Figure 2 with a hypothetical slower
controller (1, 2, 5 cycles per task switch) and shows the gain eroding —
at 5 cycles per switch (the DSP56300 point) tight loops lose most of
the benefit, quantifying why the zero-overhead property matters.
"""

from __future__ import annotations

import pytest

from repro.cpu.pipeline import PipelineConfig
from repro.eval.machines import M_ZOLC_LITE, XR_DEFAULT
from repro.eval.metrics import improvement_percent
from repro.eval.runner import run_kernel

SUBSET = ("vec_sum", "dot_product", "crc32", "matmul")
SWITCH_COSTS = (0, 1, 2, 5)


@pytest.mark.repro
def test_switch_cost_sweep(benchmark, reg):
    def sweep():
        table = {}
        for cost in SWITCH_COSTS:
            pipeline = PipelineConfig(zolc_switch_cycles=cost)
            per_kernel = {}
            for name in SUBSET:
                kernel = reg.get(name)
                base = run_kernel(kernel, XR_DEFAULT, pipeline=pipeline)
                zolc = run_kernel(kernel, M_ZOLC_LITE, pipeline=pipeline)
                per_kernel[name] = improvement_percent(zolc.cycles,
                                                       base.cycles)
            table[cost] = per_kernel
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nZOLC improvement vs task-switch cost (cycles/switch):")
    print(f"{'kernel':<12} " + " ".join(f"{c:>7}c" for c in SWITCH_COSTS))
    for name in SUBSET:
        row = " ".join(f"{table[c][name]:>7.1f}%" for c in SWITCH_COSTS)
        print(f"{name:<12} {row}")
    averages = {c: sum(table[c].values()) / len(SUBSET)
                for c in SWITCH_COSTS}
    for cost, avg in averages.items():
        benchmark.extra_info[f"switch_{cost}c_avg_pct"] = round(avg, 1)
    values = [averages[c] for c in SWITCH_COSTS]
    # Strictly eroding with switch cost...
    assert all(b < a for a, b in zip(values, values[1:]))
    # ...and a 5-cycle controller (the DSP56300 point) loses most of the
    # zero-overhead controller's advantage on tight loops.
    assert averages[5] < averages[0] / 2
