"""A6 — the bound-reload extension on varying-bound loop nests.

The DATE'05 ZOLC initialises loop bounds once, outside the nest; loops
whose bounds are recomputed by an enclosing loop (the textbook FFT's
group/butterfly structure) must stay in software.  The authors'
follow-up work reloads table entries at loop entry; our
``ZolcConfig.bound_reload`` models it with a one-``mtz``-per-field
reload at the loop preheader.

This bench compares, on the 64-point FFT:

* ``fft_classic`` under plain ZOLClite (only the fixed-bound stage and
  bit-reversal loops convert);
* ``fft_classic`` under ZOLClite+br (all four loops convert);
* the constant-geometry ``fft`` reformulation under plain ZOLClite
  (the *software* answer to the same limitation).
"""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.core.config import ZOLC_LITE, with_bound_reload
from repro.cpu.simulator import run_program
from repro.eval.metrics import improvement_percent
from repro.transform.zolc_rewrite import rewrite_for_zolc


@pytest.mark.repro
def test_bound_reload_on_classic_fft(benchmark, reg):
    def measure():
        rows = {}
        for kernel_name, config in (
                ("fft_classic", ZOLC_LITE),
                ("fft_classic", with_bound_reload(ZOLC_LITE)),
                ("fft", ZOLC_LITE)):
            kernel = reg.get(kernel_name)
            baseline = run_program(assemble(kernel.source)).stats.cycles
            transform = rewrite_for_zolc(kernel.source, config)
            sim = transform.make_simulator()
            sim.run()
            kernel.check(sim)
            rows[(kernel_name, config.name)] = (
                baseline, sim.stats.cycles,
                transform.transformed_loop_count,
                transform.reload_instruction_count)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nBound-reload extension on the 64-point FFT:")
    print(f"{'kernel':<12} {'config':<12} {'base':>7} {'zolc':>7}"
          f" {'gain %':>7} {'loops':>6} {'reloads':>8}")
    for (kernel_name, config_name), (base, zolc, loops, reloads) \
            in rows.items():
        gain = improvement_percent(zolc, base)
        print(f"{kernel_name:<12} {config_name:<12} {base:>7} {zolc:>7}"
              f" {gain:>6.1f}% {loops:>6} {reloads:>8}")
        benchmark.extra_info[f"{kernel_name}_{config_name}_gain"] = round(
            gain, 1)

    classic_lite = rows[("fft_classic", "ZOLClite")]
    classic_br = rows[("fft_classic", "ZOLClite+br")]
    constgeom = rows[("fft", "ZOLClite")]
    # The extension unlocks the two varying-bound loops...
    assert classic_br[2] == 4 and classic_lite[2] == 2
    # ...and recovers most of what the software reformulation achieves.
    gain_lite = improvement_percent(classic_lite[1], classic_lite[0])
    gain_br = improvement_percent(classic_br[1], classic_br[0])
    gain_cg = improvement_percent(constgeom[1], constgeom[0])
    assert gain_br > 3 * gain_lite
    assert gain_br > 0.6 * gain_cg
