"""A3 — branch-penalty sensitivity.

The ZOLC's gain comes from removing instructions *and* taken-branch
flushes; the deeper the branch resolution, the larger the gain.  This
sweep re-runs a representative subset of Figure 2 under taken-branch
penalties 0..3 and checks the trend, establishing that the paper's
result shape is robust to the main free parameter of our XiRisc
substitute (DESIGN.md §3).
"""

from __future__ import annotations

import pytest

from repro.cpu.pipeline import PipelineConfig
from repro.eval.machines import M_ZOLC_LITE, XR_DEFAULT
from repro.eval.metrics import improvement_percent
from repro.eval.runner import run_kernel

SUBSET = ("vec_sum", "matmul", "crc32", "me_tss")
PENALTIES = (0, 1, 2, 3)


@pytest.mark.repro
def test_branch_penalty_sweep(benchmark, reg):
    def sweep():
        table = {}
        for penalty in PENALTIES:
            pipeline = PipelineConfig(branch_penalty=penalty,
                                      jump_register_penalty=penalty)
            improvements = []
            for name in SUBSET:
                kernel = reg.get(name)
                base = run_kernel(kernel, XR_DEFAULT, pipeline=pipeline)
                zolc = run_kernel(kernel, M_ZOLC_LITE, pipeline=pipeline)
                improvements.append(
                    improvement_percent(zolc.cycles, base.cycles))
            table[penalty] = sum(improvements) / len(improvements)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nZOLC average improvement vs taken-branch penalty:")
    for penalty, improvement in table.items():
        print(f"  penalty {penalty}: {improvement:5.1f} %")
        benchmark.extra_info[f"penalty_{penalty}_avg_pct"] = round(
            improvement, 1)
    values = [table[p] for p in PENALTIES]
    # Monotone: deeper pipelines benefit more from zero-overhead looping.
    assert all(b > a for a, b in zip(values, values[1:]))
    # Even a zero-penalty machine still gains (instructions removed).
    assert values[0] > 10.0
