"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.workloads.suite import registry


@pytest.fixture(scope="session")
def reg():
    return registry()


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "repro: benchmark reproducing a paper table/figure")
