"""Shared fixtures and options for the benchmark harness.

The ``--write-root`` flag controls where
``benchmarks/bench_throughput.py`` records its numbers:

* ``BENCH_SMOKE=1`` (CI) — single-round smoke numbers are too noisy to
  version; they go to ``BENCH_throughput.smoke.json`` (git-ignored,
  uploaded as a CI artifact and fed to the trajectory gate).
* full run, no flag — ``BENCH_throughput.local.json`` (git-ignored), so
  an ad-hoc benchmark run can never silently clobber the committed
  perf-trajectory record.
* full run with ``--write-root`` — the committed
  ``BENCH_throughput.json`` at the repo root.  This is the one
  deliberate way to refresh the baseline (see DESIGN.md §9).

``--write-root`` under smoke mode is refused outright: a single
warmup-free round must never masquerade as the current baseline.
"""

from __future__ import annotations

import os

import pytest

from repro.workloads.suite import registry


@pytest.fixture(scope="session")
def reg():
    return registry()


def pytest_addoption(parser):
    parser.addoption(
        "--write-root",
        action="store_true",
        default=False,
        help="refresh the committed BENCH_throughput.json baseline",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "repro: benchmark reproducing a paper table/figure"
    )
    if (
        config.getoption("--write-root")
        and os.environ.get("BENCH_SMOKE") == "1"
    ):
        raise pytest.UsageError("--write-root refused under BENCH_SMOKE=1")
