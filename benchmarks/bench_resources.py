"""E3/E4 — ZOLC resource requirements.

Regenerates the paper's in-text resource table: "the requirements in
storage resources are 30, 258 and 642 storage bytes and in
combinational area 298, 4056, and 4428 equivalent gates" for uZOLC /
ZOLClite / ZOLCfull.
"""

from __future__ import annotations

import pytest

from repro.core.config import CANONICAL_CONFIGS
from repro.core.costs import equivalent_gates, storage_bytes
from repro.eval.report import (
    render_area_breakdown,
    render_resource_table,
    render_storage_breakdown,
)
from repro.hwmodel.area import PAPER_EQUIVALENT_GATES
from repro.hwmodel.storage import PAPER_STORAGE_BYTES


@pytest.mark.repro
def test_resource_table(benchmark):
    """E3 + E4: storage and area vs the paper, exact match required."""
    def compute():
        return {config.name: (storage_bytes(config), equivalent_gates(config))
                for config in CANONICAL_CONFIGS}

    totals = benchmark.pedantic(compute, rounds=5, iterations=10)
    print("\n" + render_resource_table())
    print("\n" + render_storage_breakdown())
    print("\n" + render_area_breakdown())
    for name, (storage, gates) in totals.items():
        benchmark.extra_info[f"{name}_storage_bytes"] = storage
        benchmark.extra_info[f"{name}_gates"] = gates
        assert storage == PAPER_STORAGE_BYTES[name]
        assert gates == PAPER_EQUIVALENT_GATES[name]


@pytest.mark.repro
def test_resource_scaling_sweep(benchmark):
    """Extrapolation: cost vs loop count (model behaviour beyond paper)."""
    from repro.core.config import ZolcConfig

    def sweep():
        rows = []
        for loops in (1, 2, 4, 8, 16):
            config = ZolcConfig(f"L{loops}", max_loops=loops,
                                max_task_entries=4 * loops,
                                entries_per_loop=1, multi_entry_exit=False)
            rows.append((loops, storage_bytes(config),
                         equivalent_gates(config)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=5, iterations=10)
    print("\nZOLC cost scaling (loops, storage B, gates):")
    for loops, storage, gates in rows:
        print(f"  {loops:>2} loops: {storage:>5} B  {gates:>6} gates")
    # Linear scaling in both resources.
    storages = [s for _, s, _ in rows]
    assert all(b > a for a, b in zip(storages, storages[1:]))
