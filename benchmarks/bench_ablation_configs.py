"""A1 — ZOLC configuration ablation: uZOLC vs ZOLClite vs ZOLCfull.

Quantifies the paper's qualitative claims about its three hardware
points: uZOLC only reaches innermost loops, ZOLClite drives arbitrary
*single-entry/exit* nests, and ZOLCfull additionally drives
multiple-entry/exit structures (shown on the early-exit motion
estimation kernel).
"""

from __future__ import annotations

import pytest

from repro.eval.machines import ALL_MACHINES, M_UZOLC, M_ZOLC_FULL, M_ZOLC_LITE
from repro.eval.runner import run_kernel
from repro.workloads.suite import FIGURE2_BENCHMARKS


@pytest.mark.repro
def test_config_ladder(benchmark, reg):
    """All five machines across the suite: cycles per configuration."""
    def measure():
        table = {}
        for name in FIGURE2_BENCHMARKS:
            kernel = reg.get(name)
            table[name] = {m.name: run_kernel(kernel, m).cycles
                           for m in ALL_MACHINES}
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    machines = [m.name for m in ALL_MACHINES]
    print("\nConfiguration ladder (cycles):")
    print(f"{'benchmark':<12} " + " ".join(f"{m:>10}" for m in machines))
    for name, row in table.items():
        print(f"{name:<12} " + " ".join(f"{row[m]:>10}" for m in machines))
    totals = {m: sum(row[m] for row in table.values()) for m in machines}
    print(f"{'TOTAL':<12} " + " ".join(f"{totals[m]:>10}" for m in machines))
    for machine_name, total in totals.items():
        benchmark.extra_info[f"total_{machine_name}"] = total
    # Orderings that must hold: each ZOLC tier subsumes the previous,
    # and both full ZOLC tiers beat both baselines.  uZOLC and XRhrdwil
    # are *not* ordered in general — uZOLC reaches only innermost loops
    # while dbne reaches every counted level.
    assert totals["ZOLCfull"] <= totals["ZOLClite"] <= totals["uZOLC"]
    assert totals["ZOLClite"] <= totals["XRhrdwil"] <= totals["XRdefault"]
    assert totals["uZOLC"] < totals["XRdefault"]


@pytest.mark.repro
def test_multi_exit_needs_full(benchmark, reg):
    """ZOLCfull's exit records on the early-exit ME kernel."""
    def measure():
        kernel = reg.get("me_fss_early")
        return {m.name: run_kernel(kernel, m)
                for m in (M_UZOLC, M_ZOLC_LITE, M_ZOLC_FULL)}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nme_fss_early (partial-SAD early termination):")
    for name, result in results.items():
        print(f"  {name:<10} cycles {result.cycles:>8}  "
              f"loops driven {result.transformed_loops}")
        benchmark.extra_info[f"{name}_cycles"] = result.cycles
        benchmark.extra_info[f"{name}_loops"] = result.transformed_loops
    assert results["ZOLCfull"].transformed_loops \
        > results["ZOLClite"].transformed_loops
    assert results["ZOLCfull"].cycles < results["ZOLClite"].cycles
