"""Unit + property tests for the index calculation unit."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.index_unit import index_value, iterations_from_index
from repro.core.tables import LoopRecord
from repro.cpu.exceptions import ZolcFaultError
from repro.util.bitops import to_unsigned32


def record(initial=0, step=1):
    return LoopRecord(trips=100, initial=to_unsigned32(initial),
                      step=to_unsigned32(step))


class TestIndexValue:
    def test_up_count(self):
        rec = record(0, 1)
        assert [index_value(rec, k) for k in range(4)] == [0, 1, 2, 3]

    def test_down_count(self):
        rec = record(10, -1)
        assert index_value(rec, 3) == 7

    def test_stride_4(self):
        rec = record(0x100, 4)
        assert index_value(rec, 5) == 0x114

    def test_wraps_32_bits(self):
        rec = record(0xFFFFFFFF, 1)
        assert index_value(rec, 1) == 0

    def test_negative_step_wrap(self):
        rec = record(0, -1)
        assert index_value(rec, 1) == 0xFFFFFFFF


class TestIterationsFromIndex:
    def test_recovers_up_count(self):
        rec = record(0, 1)
        assert iterations_from_index(rec, 5) == 5

    def test_recovers_down_count(self):
        rec = record(10, -1)
        assert iterations_from_index(rec, 7) == 3

    def test_recovers_strided(self):
        rec = record(0x100, 4)
        assert iterations_from_index(rec, 0x114) == 5

    def test_rejects_zero_step(self):
        with pytest.raises(ZolcFaultError):
            iterations_from_index(record(0, 0), 5)

    def test_rejects_unreachable_value(self):
        with pytest.raises(ZolcFaultError):
            iterations_from_index(record(0, 2), 5)

    def test_rejects_pre_initial_value(self):
        rec = record(4, 1)
        with pytest.raises(ZolcFaultError):
            iterations_from_index(rec, 2)

    @given(st.integers(min_value=-1000, max_value=1000),
           st.sampled_from([-8, -4, -2, -1, 1, 2, 4, 8]),
           st.integers(min_value=0, max_value=500))
    def test_roundtrip(self, initial, step, done):
        rec = record(initial, step)
        value = index_value(rec, done)
        assert iterations_from_index(rec, value) == done
