"""Tests for the viterbi and bubble_sort extra kernels."""

import pytest

from repro.asm import assemble
from repro.core.config import UZOLC, ZOLC_FULL, ZOLC_LITE
from repro.cpu.simulator import run_program
from repro.transform.hwlp_rewrite import rewrite_for_hwlp
from repro.transform.zolc_rewrite import rewrite_for_zolc
from repro.workloads.suite import registry


@pytest.fixture(scope="module")
def reg():
    return registry()


class TestViterbi:
    def test_baseline(self, reg):
        kernel = reg.get("viterbi")
        sim = run_program(assemble(kernel.source))
        kernel.check(sim)

    def test_lite_drives_all_three_loops(self, reg):
        kernel = reg.get("viterbi")
        result = rewrite_for_zolc(kernel.source, ZOLC_LITE)
        assert result.transformed_loop_count == 3
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)

    def test_uzolc_profitability_leaves_short_state_loop(self, reg):
        # The 4-trip state loop can't amortise per-entry init: uZOLC
        # declines, and the program runs unchanged.
        kernel = reg.get("viterbi")
        result = rewrite_for_zolc(kernel.source, UZOLC)
        assert result.transformed_loop_count == 0
        assert any("amortise" in r for r in result.plan.rejected.values())
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)

    def test_select_branch_keeps_working(self, reg):
        # The ACS select is a body branch; ensure both select outcomes
        # survive the transform (metrics would be wrong otherwise —
        # already covered by check, but assert the cycle gain too).
        kernel = reg.get("viterbi")
        base = run_program(assemble(kernel.source)).stats.cycles
        sim = rewrite_for_zolc(kernel.source, ZOLC_LITE).make_simulator()
        sim.run()
        assert sim.stats.cycles < base


class TestBubbleSort:
    def test_baseline_sorts(self, reg):
        kernel = reg.get("bubble_sort")
        sim = run_program(assemble(kernel.source))
        kernel.check(sim)

    @pytest.mark.parametrize("config", [UZOLC, ZOLC_LITE, ZOLC_FULL])
    def test_sorted_under_every_config(self, reg, config):
        kernel = reg.get("bubble_sort")
        result = rewrite_for_zolc(kernel.source, config)
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)

    def test_hwlp_converts_inner(self, reg):
        kernel = reg.get("bubble_sort")
        result = rewrite_for_hwlp(kernel.source)
        assert result.converted_count == 1
        sim = run_program(result.program)
        kernel.check(sim)

    def test_lite_takes_both_levels(self, reg):
        kernel = reg.get("bubble_sort")
        result = rewrite_for_zolc(kernel.source, ZOLC_LITE)
        assert result.transformed_loop_count == 2
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)
        base = run_program(assemble(kernel.source)).stats.cycles
        assert sim.stats.cycles < base
