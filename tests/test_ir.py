"""Unit tests for the engine IR (:mod:`repro.cpu.ir`).

The IR is the single decode step every engine tier lowers from, so the
tests pin (1) the decode round-trip — every field of every
:class:`IROp` against the raw :class:`Instruction` it came from, over
every figure-2 opcode the suite's prepared programs exercise and the
full ``datapath.EXECUTORS`` table; (2) the config-derived timing
helpers against the predecoded fast-tier metadata, across pipeline
sweeps; (3) the per-program cache (including the ``None`` non-dense
case); and (4) the shared straight-line slicing scan, which must
partition identically whether it reads the IR or the predecoded
``OpMeta`` array.
"""

import pytest

from repro.asm import assemble
from repro.cpu import SimulationError, Simulator
from repro.cpu.engine import predecode
from repro.cpu.ir import (
    build_ir,
    ir_op_from_instruction,
    op_base_cycles,
    op_taken_penalty,
    straightline_terms,
)
from repro.cpu.pipeline import PipelineConfig
from repro.eval.machines import ALL_MACHINES
from repro.isa.instructions import Category, Instruction


def _suite_programs():
    from repro.workloads.suite import registry

    for kernel in registry().kernels.values():
        for machine in ALL_MACHINES:
            yield machine.prepare(kernel.source).program


class TestRoundTrip:
    def test_every_field_matches_the_instruction(self):
        """IR decode round-trip over every suite program × machine."""
        seen = set()
        for program in _suite_programs():
            ir = build_ir(program)
            assert ir is not None
            assert len(ir) == len(program.instructions)
            base = program.text_base
            for i, (op, inst) in enumerate(zip(ir, program.instructions)):
                seen.add(inst.mnemonic)
                assert op.index == i
                assert op.address == base + 4 * i == inst.address
                assert op.mnemonic == inst.mnemonic
                assert op.category_key == inst.category.value
                assert (op.rd, op.rs, op.rt) == (inst.rd, inst.rs, inst.rt)
                assert (op.shamt, op.imm) == (inst.shamt, inst.imm)
                assert op.link == inst.address + 4
                assert op.uses == inst.uses()
                assert op.is_branch == inst.is_branch()
                assert op.is_mul == (inst.category is Category.MUL)
                assert op.is_zolc_init == (inst.category is Category.ZOLC)
                if inst.is_branch():
                    assert op.target == inst.address + 4 + 4 * inst.imm
                elif inst.mnemonic in ("j", "jal"):
                    assert op.target == inst.target * 4
                else:
                    assert op.target is None
                if inst.category is Category.LOAD and inst.rt:
                    assert op.load_dest == inst.rt
                else:
                    assert op.load_dest is None
                assert op.can_transfer == (
                    inst.is_branch() or inst.category is Category.JUMP
                    or inst.mnemonic == "halt")
        # The suite's ZOLC machines must have exercised the special
        # decode branches (hwloop, ZOLC init, branches, loads/stores),
        # or the loop above pinned nothing; ``mfz``/jumps are covered
        # by the EXECUTORS sweep below.
        assert {"dbne", "mtz", "beq", "lw", "sw", "halt"} <= seen

    def test_covers_every_executor_mnemonic(self):
        """Every datapath mnemonic decodes; unknown ones raise."""
        from repro.cpu.datapath import EXECUTORS

        for mnemonic in EXECUTORS:
            op = ir_op_from_instruction(Instruction(mnemonic, address=0), 0)
            assert op.mnemonic == mnemonic
            assert op.penalty_kind in ("hwloop", "jump_register", "branch")
        with pytest.raises(SimulationError, match="frobnicate"):
            ir_op_from_instruction(
                Instruction("frobnicate", address=0), 0)

    def test_penalty_kind_decode(self):
        assert ir_op_from_instruction(
            Instruction("dbne", address=0), 0).penalty_kind == "hwloop"
        for m in ("jr", "jalr"):
            assert ir_op_from_instruction(
                Instruction(m, address=0), 0).penalty_kind == "jump_register"
        assert ir_op_from_instruction(
            Instruction("beq", address=0), 0).penalty_kind == "branch"


class TestTiming:
    @pytest.mark.parametrize("config", [
        PipelineConfig(),
        PipelineConfig(branch_penalty=3, jump_register_penalty=2,
                       hwloop_penalty=1, mul_extra_cycles=4,
                       load_use_stall=2, zolc_switch_cycles=1),
    ])
    def test_helpers_match_predecoded_metadata(self, config):
        """op_base_cycles / op_taken_penalty == the fast tier's tuples."""
        for machine in ALL_MACHINES:
            from repro.workloads.suite import registry

            kernel = next(iter(registry().kernels.values()))
            prepared = machine.prepare(kernel.source)
            sim = prepared.make_simulator(pipeline=config)
            predecoded = predecode(sim)
            assert predecoded is not None
            assert predecoded.ir == build_ir(sim.program)
            for op, slot in zip(predecoded.ir, predecoded.ops):
                _fn, base_cycles, uses, load_dest, taken_penalty = slot
                assert op_base_cycles(op, config) == base_cycles
                assert op_taken_penalty(op, config) == taken_penalty
                assert op.uses == uses
                assert op.load_dest == load_dest


class TestCache:
    def test_ir_is_built_once_per_program(self):
        program = assemble("li t0, 1\nadd t1, t0, t0\nhalt\n")
        first = build_ir(program)
        assert first is not None
        assert build_ir(program) is first

    def test_non_dense_text_caches_none(self):
        program = assemble("li t0, 1\nhalt\n")
        # Hand-break the density invariant the assembler upholds.
        program.instructions[1].address = program.text_base + 64
        assert build_ir(program) is None
        assert build_ir(program) is None  # the None is cached too

    def test_port_swap_does_not_stale_the_ir(self):
        # The IR is pure decoded fact (no simulator state), so a ZOLC
        # port swap re-predecodes but must *not* rebuild the IR.
        program = assemble("li t0, 1\nhalt\n")
        sim = Simulator(program)
        first = predecode(sim).ir
        assert build_ir(program) is first


class TestStraightlineTerms:
    SOURCE = """
        li   t0, 0
        li   t1, 5
loop:
        add  t0, t0, t1
        addi t1, t1, -1
        bne  t1, zero, loop
        sw   t0, 0(zero)
        halt
"""

    def test_ir_and_metas_slice_identically(self):
        sim = Simulator(assemble(self.SOURCE))
        predecoded = predecode(sim)
        ir = build_ir(sim.program)
        base = sim.program.text_base
        for watched in (frozenset(), {base + 8}, {base + 12, base + 20}):
            assert (straightline_terms(ir, base, watched)
                    == straightline_terms(predecoded.metas, base, watched))

    def test_transfers_and_zolc_terminate(self):
        sim = Simulator(assemble(self.SOURCE))
        ir = build_ir(sim.program)
        base = sim.program.text_base
        terms = straightline_terms(ir, base, frozenset())
        # Slots 0..4 run straight into the branch at slot 4; the two
        # tail slots fuse into (5, 6) ending at the halt.
        assert terms[0] == 4
        assert terms[4] is None          # a lone terminator is no span
        assert terms[5] == 6
        # A watched *next* pc splits the span before its slot.
        watched = {base + 8}             # slot 2 is someone's watch target
        split = straightline_terms(ir, base, watched)
        assert split[0] == 1
        assert split[2] == 4

    def test_watched_pc_matches_plan_slicing(self):
        # The traced tier's region slicing delegates here; spans must
        # never cross a plan watch target so interior members stay
        # unwatched (only terminators dispatch).
        sim = Simulator(assemble(self.SOURCE))
        ir = build_ir(sim.program)
        base = sim.program.text_base
        for idx, term in enumerate(
                straightline_terms(ir, base, {base + 8})):
            if term is None:
                continue
            for interior in range(idx, term):
                assert base + 4 * interior + 4 != base + 8


class TestUnavailableSentinel:
    """Satellite: one unified no-IR signal for undecodable programs."""

    def test_sparse_text_reports_reason(self):
        from repro.cpu.ir import IRUnavailable, ir_failure

        program = assemble("li t0, 1\nhalt\n")
        program.instructions[1].address = program.text_base + 64
        assert ir_failure(program) is None  # nothing cached yet
        assert build_ir(program) is None
        reason = ir_failure(program)
        assert reason is not None and "dense" in reason
        assert isinstance(program.__dict__["_engine_ir"], IRUnavailable)

    def test_unknown_mnemonic_caches_instead_of_raising(self):
        from repro.cpu.ir import ir_failure

        program = assemble("li t0, 1\nhalt\n")
        program.instructions[0].mnemonic = "frobnicate"
        assert build_ir(program) is None
        assert build_ir(program) is None  # cached, not re-raised
        reason = ir_failure(program)
        assert reason is not None and "frobnicate" in reason

    def test_simulator_surfaces_the_reason(self):
        program = assemble("li t0, 1\nhalt\n")
        program.instructions[1].address = program.text_base + 64
        sim = Simulator(program)
        assert sim._ensure_predecoded() is False
        assert "dense" in sim._predecode_failure

    def test_slicing_the_sentinel_is_a_caller_bug(self):
        with pytest.raises(SimulationError):
            straightline_terms(None, 0, frozenset())

    def test_decodable_program_has_no_failure(self):
        from repro.cpu.ir import ir_failure

        program = assemble("li t0, 1\nhalt\n")
        assert build_ir(program) is not None
        assert ir_failure(program) is None


class TestDataflowFields:
    """The defs/reads metadata the analysis layer consumes."""

    def test_defs_exclude_r0_reads_keep_it(self):
        ir = build_ir(assemble("add zero, zero, t1\nhalt\n"))
        op = ir[0]
        assert op.defs == frozenset()
        assert op.reads == (0, 9)      # raw ISA order, r0 kept

    def test_reads_keep_duplicates(self):
        ir = build_ir(assemble("add t0, t1, t1\nhalt\n"))
        assert ir[0].reads == (9, 9)
        assert ir[0].uses == frozenset({9})

    def test_defs_and_uses_match_instruction(self):
        for program in _suite_programs():
            ir = build_ir(program)
            for op, inst in zip(ir, program.instructions):
                assert op.defs == inst.defs()
                assert op.uses == inst.uses()
