"""Assembler negative-path coverage: every malformed construct diagnosed."""

import pytest

from repro.asm import AsmError, assemble


BAD_SOURCES = {
    "unknown mnemonic": "frobnicate t0, t1\n",
    "too few operands": "add t0, t1\n",
    "too many operands": "add t0, t1, t2, t3\n",
    "register in shamt slot": "sll t0, t1, t2\n",
    "unknown register": "add q9, t1, t2\n",
    "bad memory operand": "lw t0, t1\n",
    "undefined branch target": "bne t0, zero, nowhere\n",
    "undefined jump target": "j missing\n",
    "imm overflow signed": "addi t0, t0, 100000\n",
    "imm negative for unsigned op": "ori t0, t0, -5\n",
    "duplicate label": "x: nop\nx: halt\n",
    "dangling label": "nop\nend:\n",
    "data directive in text": ".word 5\n",
    "instruction in data": ".data\nadd t0, t1, t2\n",
    "byte out of range": ".data\nb: .byte 999\n.text\nnop\n",
    "unbalanced paren": "lw t0, 4(sp\n",
    "empty operand": "add t0, , t2\n",
    "bad equ value": ".equ N, banana\nnop\n",
}


@pytest.mark.parametrize("description", sorted(BAD_SOURCES))
def test_malformed_source_raises(description):
    with pytest.raises(AsmError):
        assemble(BAD_SOURCES[description])


def test_error_message_names_the_problem():
    with pytest.raises(AsmError) as err:
        assemble("nop\nadd t0, t1\n")
    message = str(err.value)
    assert "line 2" in message
    assert "expected 3 operand" in message


def test_branch_alignment_check():
    # An .equ constant that is not word aligned cannot be a branch target.
    with pytest.raises(AsmError) as err:
        assemble(".equ SPOT, 2\nbne t0, zero, SPOT\n")
    assert "aligned" in str(err.value)


def test_jump_alignment_check():
    with pytest.raises(AsmError):
        assemble(".equ SPOT, 6\nj SPOT\n")


def test_good_program_with_all_operand_kinds():
    """A positive control exercising every operand slot kind at once."""
    program = assemble("""
        .equ OFF, 8
        .data
tbl:    .word 1, 2
        .text
main:   la   t0, tbl
        lw   t1, OFF(t0)
        sll  t2, t1, 3
        srav t3, t2, t1
        bgez t3, fwd
        j    main
fwd:    jal  sub
        halt
sub:    jr   ra
""")
    assert len(program.instructions) > 0
