"""Property-based cross-machine equivalence.

Hypothesis generates loop nests and straight-line programs; every
machine configuration must compute the same architectural result, with
cycle counts respecting the configuration ladder.  These properties
pin the core invariant of the whole reproduction: the transforms are
*pure overhead removal*.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.core.config import UZOLC, ZOLC_FULL, ZOLC_LITE
from repro.cpu.pipeline import PipelineConfig
from repro.cpu.simulator import run_program
from repro.transform.hwlp_rewrite import rewrite_for_hwlp
from repro.transform.zolc_rewrite import rewrite_for_zolc
from repro.workloads.kernels.synthetic import nest_kernel

_slow = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _out_word(sim):
    return sim.memory.load_word(sim.program.symbols["out"])


class TestNestEquivalence:
    @_slow
    @given(depth=st.integers(min_value=1, max_value=5),
           trips=st.integers(min_value=1, max_value=5),
           body_ops=st.integers(min_value=1, max_value=6))
    def test_all_machines_same_checksum(self, depth, trips, body_ops):
        kernel = nest_kernel(depth=depth, trips=trips, body_ops=body_ops)
        baseline = run_program(assemble(kernel.source))
        expected = _out_word(baseline)

        hwlp = run_program(rewrite_for_hwlp(kernel.source).program)
        assert _out_word(hwlp) == expected

        for config in (UZOLC, ZOLC_LITE, ZOLC_FULL):
            sim = rewrite_for_zolc(kernel.source, config).make_simulator()
            sim.run()
            assert _out_word(sim) == expected

    @_slow
    @given(depth=st.integers(min_value=1, max_value=5),
           trips=st.integers(min_value=2, max_value=5),
           body_ops=st.integers(min_value=1, max_value=6))
    def test_zolc_wins_once_init_amortises(self, depth, trips, body_ops):
        kernel = nest_kernel(depth=depth, trips=trips, body_ops=body_ops)
        baseline = run_program(assemble(kernel.source))
        transform = rewrite_for_zolc(kernel.source, ZOLC_LITE)
        sim = transform.make_simulator()
        sim.run()
        # Removed overhead: >= 3 cycles per innermost iteration (update +
        # taken branch + flush).  The one-time init costs roughly its
        # instruction count.  When the former clearly exceeds the
        # latter, the ZOLC must win; below that we only require
        # correctness (checked by the equivalence property).
        estimated_savings = 3 * trips ** depth
        if estimated_savings > transform.init_instruction_count + 10:
            assert sim.stats.cycles < baseline.stats.cycles

    @_slow
    @given(depth=st.integers(min_value=1, max_value=4),
           trips=st.integers(min_value=1, max_value=4),
           penalty=st.integers(min_value=0, max_value=3))
    def test_result_independent_of_timing(self, depth, trips, penalty):
        """Timing parameters change cycles, never architectural state."""
        kernel = nest_kernel(depth=depth, trips=trips, body_ops=2)
        pipeline = PipelineConfig(branch_penalty=penalty)
        transform = rewrite_for_zolc(kernel.source, ZOLC_LITE)
        sim = transform.make_simulator(pipeline=pipeline)
        sim.run()
        kernel.check(sim)

    @_slow
    @given(depth=st.integers(min_value=1, max_value=4),
           trips=st.integers(min_value=1, max_value=5))
    def test_task_switch_count_exact(self, depth, trips):
        """One switch per innermost iteration end — never more."""
        kernel = nest_kernel(depth=depth, trips=trips, body_ops=2)
        transform = rewrite_for_zolc(kernel.source, ZOLC_LITE)
        sim = transform.make_simulator()
        sim.run()
        assert sim.stats.zolc_task_switches == trips ** depth


class TestCounterVisibility:
    @_slow
    @given(trips=st.integers(min_value=1, max_value=40),
           step=st.sampled_from([1, 2, 3, 4]))
    def test_accumulated_index_matches_software(self, trips, step):
        """The ZOLC's index write-back is observable every iteration."""
        bound = trips * step
        source = f"""
        .data
out:    .word 0
        .text
main:   li   t0, 0
loop:   add  s0, s0, t0
        addi t0, t0, {step}
        slti at, t0, {bound + 1}
        bne  at, zero, loop
        la   t1, out
        sw   s0, 0(t1)
        halt
"""
        baseline = run_program(assemble(source))
        sim = rewrite_for_zolc(source, ZOLC_LITE).make_simulator()
        sim.run()
        assert _out_word(sim) == _out_word(baseline)
        assert sim.state.regs["t0"] == baseline.state.regs["t0"]
