"""Differential testing of the datapath.

Hypothesis generates random straight-line ALU programs (shared
strategies in ``tests/strategies.py``); the simulator's final register
state is checked against an *independent* reference interpreter written
directly from the ISA definition (no shared code with the datapath).
Any divergence in wrap-around, sign-extension or shift semantics fails
loudly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.cpu.simulator import run_program
from repro.isa import encode, decode
from repro.util.bitops import MASK32, to_signed32

from strategies import (
    REGS,
    alu_instructions,
    render_alu_program,
    reg_seeds,
)


def _ref_alu(mnemonic, a, b):
    """Independent semantics, straight from the architecture manual."""
    sa, sb = to_signed32(a), to_signed32(b)
    if mnemonic == "add":
        return (a + b) & MASK32
    if mnemonic == "sub":
        return (a - b) & MASK32
    if mnemonic == "and":
        return a & b
    if mnemonic == "or":
        return a | b
    if mnemonic == "xor":
        return a ^ b
    if mnemonic == "nor":
        return ~(a | b) & MASK32
    if mnemonic == "slt":
        return int(sa < sb)
    if mnemonic == "sltu":
        return int(a < b)
    if mnemonic == "mul":
        return (sa * sb) & MASK32
    if mnemonic == "mulh":
        return ((sa * sb) >> 32) & MASK32
    raise AssertionError(mnemonic)


def _reference(program_spec, seeds):
    regs = {name: seed & MASK32 for name, seed in zip(REGS, seeds)}
    for kind, op, rd, rs, rt, imm in program_spec:
        a = regs[rs]
        if kind == "rr":
            value = _ref_alu(op, a, regs[rt])
        elif kind == "shift":
            if op == "sll":
                value = (a << imm) & MASK32
            elif op == "srl":
                value = a >> imm
            else:
                value = (to_signed32(a) >> imm) & MASK32
        elif kind == "imm":
            if op == "addi":
                value = (a + imm) & MASK32
            elif op == "slti":
                value = int(to_signed32(a) < imm)
            else:  # sltiu compares against the sign-extended imm, unsigned
                value = int(a < (imm & MASK32))
        else:
            if op == "andi":
                value = a & imm
            elif op == "ori":
                value = a | imm
            else:
                value = a ^ imm
        regs[rd] = value
    return regs


class TestDifferentialALU:
    @settings(max_examples=120, deadline=None)
    @given(spec=st.lists(alu_instructions(), min_size=1, max_size=24),
           seeds=reg_seeds)
    def test_simulator_matches_reference(self, spec, seeds):
        source = render_alu_program(spec, seeds)
        sim = run_program(assemble(source))
        expected = _reference(spec, seeds)
        for name in REGS:
            assert sim.state.regs[name] == expected[name], \
                f"{name} diverged for program:\n{source}"


class TestProgramImageFidelity:
    @settings(max_examples=40, deadline=None)
    @given(spec=st.lists(alu_instructions(), min_size=1, max_size=12),
           seeds=st.lists(st.integers(min_value=-1000, max_value=1000),
                          min_size=4, max_size=4))
    def test_text_segment_decodes_back(self, spec, seeds):
        """The encoded memory image decodes to the assembled program."""
        program = assemble(render_alu_program(spec, seeds))
        for inst, word in zip(program.instructions, program.words()):
            decoded = decode(word)
            assert decoded.mnemonic == inst.mnemonic
            assert encode(decoded) == word
