"""Tests for the bound-reload extension (nest-varying loop bounds)."""

from repro.asm import assemble
from repro.core.config import ZOLC_FULL, ZOLC_LITE, with_bound_reload
from repro.cpu.simulator import run_program
from repro.transform.zolc_rewrite import rewrite_for_zolc
from repro.workloads.suite import registry

VARYING = """
        .data
out:    .word 0
        .text
main:
        li   s6, 1          # inner bound: 1, 2, 4, 8, 16
        li   t0, 5
outer:
        or   t1, s6, zero
inner:
        addi s0, s0, 1
        addi t1, t1, -1
        bne  t1, zero, inner
        sll  s6, s6, 1
        addi t0, t0, -1
        bne  t0, zero, outer
        la   t2, out
        sw   s0, 0(t2)
        halt
"""
VARYING_EXPECTED = 31


class TestConfigHelper:
    def test_with_bound_reload_renames(self):
        config = with_bound_reload(ZOLC_LITE)
        assert config.bound_reload
        assert config.name == "ZOLClite+br"
        assert config.max_loops == ZOLC_LITE.max_loops

    def test_idempotent(self):
        config = with_bound_reload(ZOLC_LITE)
        assert with_bound_reload(config) is config

    def test_canonical_configs_have_it_off(self):
        assert not ZOLC_LITE.bound_reload
        assert not ZOLC_FULL.bound_reload


class TestVaryingBoundLoop:
    def test_plain_lite_rejects_inner(self):
        result = rewrite_for_zolc(VARYING, ZOLC_LITE)
        assert result.transformed_loop_count == 1
        assert any("rewritten" in r for r in result.plan.rejected.values())
        sim = result.make_simulator()
        sim.run()
        assert sim.state.regs["s0"] == VARYING_EXPECTED

    def test_reload_takes_both_loops(self):
        result = rewrite_for_zolc(VARYING, with_bound_reload(ZOLC_LITE))
        assert result.transformed_loop_count == 2
        assert result.reload_instruction_count == 2  # TRIPS + INITIAL
        sim = result.make_simulator()
        sim.run()
        assert sim.state.regs["s0"] == VARYING_EXPECTED

    def test_reload_is_faster(self):
        baseline = run_program(assemble(VARYING)).stats.cycles
        sim = rewrite_for_zolc(
            VARYING, with_bound_reload(ZOLC_LITE)).make_simulator()
        sim.run()
        assert sim.stats.cycles < baseline

    def test_kept_init_instruction(self):
        # The `or t1, s6, zero` init survives: the register must carry
        # the fresh per-entry value.
        result = rewrite_for_zolc(VARYING, with_bound_reload(ZOLC_LITE))
        mnemonics = [i.mnemonic for i in result.program.instructions]
        assert "or" in mnemonics

    def test_own_loop_writes_still_rejected(self):
        source = """
main:   li   s6, 8
loop:   addi s0, s0, 1
        addi s6, s6, 0      # touches the bound register inside the loop
        or   t1, s6, zero   # (not actually the counter; build a real case)
        addi t1, t1, -1
        bne  t1, zero, wat
wat:    addi s6, s6, -1
        bne  s6, zero, loop
        halt
"""
        # A loop whose own body rewrites its trip register can never be
        # table-driven, reload or not.
        result = rewrite_for_zolc(source, with_bound_reload(ZOLC_LITE))
        sim = result.make_simulator()
        sim.run()  # still correct, whatever was (not) transformed


class TestClassicFFT:
    def test_baseline_matches_constant_geometry(self):
        classic = registry().get("fft_classic")
        sim = run_program(assemble(classic.source))
        classic.check(sim)  # golden model shared with 'fft'

    def test_reload_unlocks_varying_loops(self):
        classic = registry().get("fft_classic")
        lite = rewrite_for_zolc(classic.source, ZOLC_LITE)
        reload_cfg = rewrite_for_zolc(classic.source,
                                      with_bound_reload(ZOLC_LITE))
        assert lite.transformed_loop_count == 2
        assert reload_cfg.transformed_loop_count == 4
        sim = reload_cfg.make_simulator()
        sim.run()
        classic.check(sim)

    def test_reload_gain_exceeds_plain_lite(self):
        classic = registry().get("fft_classic")
        base = run_program(assemble(classic.source)).stats.cycles
        lite_sim = rewrite_for_zolc(classic.source,
                                    ZOLC_LITE).make_simulator()
        lite_sim.run()
        br_sim = rewrite_for_zolc(
            classic.source, with_bound_reload(ZOLC_LITE)).make_simulator()
        br_sim.run()
        assert br_sim.stats.cycles < lite_sim.stats.cycles < base
