"""Unit tests for initialization-sequence generation.

The emitted stream is validated two ways: structurally (instruction
kinds and selectors) and semantically — a generated sequence is spliced
into a real program, simulated, and the controller tables inspected.
"""

import pytest

from repro.asm.assembler import assemble
from repro.core import tables as T
from repro.core.config import ZOLC_FULL
from repro.core.controller import ZolcController
from repro.core.init_seq import (
    EntryInitSpec,
    ExitInitSpec,
    LoopInitSpec,
    ValueSource,
    ZolcProgramSpec,
    emit_arm,
    emit_init_sequence,
    emit_loop_init,
    emit_reset,
)
from repro.cpu.simulator import Simulator


def loop_spec(**overrides):
    base = dict(loop_id=0, trips=ValueSource.imm(8),
                initial=ValueSource.imm(0), step=1, index_reg="t1",
                body_label="body", trigger_label="trig",
                parent=None, cascade=False)
    base.update(overrides)
    return LoopInitSpec(**base)


class TestEmission:
    def test_small_imm_uses_addi(self):
        out = emit_loop_init(loop_spec())
        assert out[0].mnemonic == "addi"
        assert out[1].mnemonic == "mtz"
        assert out[1].operands == ["at", str(T.loop_selector(0, T.F_TRIPS))]

    def test_large_imm_uses_lui_ori(self):
        out = emit_loop_init(loop_spec(trips=ValueSource.imm(1 << 20)))
        mnemonics = [s.mnemonic for s in out[:3]]
        assert mnemonics == ["lui", "ori", "mtz"]

    def test_reg_source_writes_directly(self):
        out = emit_loop_init(loop_spec(trips=ValueSource.reg("s0")))
        assert out[0].mnemonic == "mtz"
        assert out[0].operands[0] == "s0"

    def test_label_source_uses_lo_reloc(self):
        out = emit_loop_init(loop_spec())
        body_writes = [s for s in out if s.mnemonic == "ori"
                       and "%lo(body)" in s.operands]
        assert body_writes

    def test_trigger_omitted_for_cascaded_loop(self):
        out = emit_loop_init(loop_spec(trigger_label=None))
        trigger_sel = str(T.loop_selector(0, T.F_TRIGGER_PC))
        assert not any(s.mnemonic == "mtz" and s.operands[1] == trigger_sel
                       for s in out)

    def test_parent_written_when_present(self):
        out = emit_loop_init(loop_spec(parent=2, cascade=True))
        parent_sel = str(T.loop_selector(0, T.F_PARENT))
        assert any(s.mnemonic == "mtz" and s.operands[1] == parent_sel
                   for s in out)

    def test_arm_writes_one(self):
        out = emit_arm()
        assert [s.mnemonic for s in out] == ["addi", "mtz"]
        assert out[1].operands == ["at", str(T.CTRL_ARM)]

    def test_reset_is_single_mtz(self):
        out = emit_reset()
        assert len(out) == 1
        assert out[0].operands == ["zero", str(T.CTRL_RESET)]

    def test_full_sequence_ends_with_arm(self):
        spec = ZolcProgramSpec(loops=[loop_spec()])
        out = emit_init_sequence(spec, reset_first=True)
        assert out[0].mnemonic == "mtz"                   # reset
        assert out[-1].operands[1] == str(T.CTRL_ARM)      # arm

    def test_bad_selector_rejected(self):
        with pytest.raises(ValueError):
            from repro.core.init_seq import _emit_value
            _emit_value(1 << 16, ValueSource.imm(0), [])

    def test_unknown_source_kind_rejected(self):
        from repro.core.init_seq import _emit_value
        with pytest.raises(ValueError):
            _emit_value(0x100, ValueSource("bogus", 0), [])


class TestEndToEnd:
    def _run_init(self, spec):
        """Splice an init sequence into a program and execute it."""
        body = "\n".join(
            f"        {s.mnemonic} " + ", ".join(s.operands)
            for s in emit_init_sequence(spec, reset_first=True))
        source = f"""
main:
        li   s0, 77
{body}
body:   nop
trig:   halt
"""
        program = assemble(source)
        controller = ZolcController(ZOLC_FULL)
        sim = Simulator(program, zolc=controller)
        controller.attach(sim.state.regs)
        sim.run()
        return controller, program, sim

    def test_tables_programmed(self):
        spec = ZolcProgramSpec(loops=[loop_spec(trips=ValueSource.imm(4),
                                                step=2)])
        # trips=4 means the trigger fires, so make body/trigger unreachable
        # by using a 1-trip loop instead: simpler, the nop isn't a trigger.
        spec.loops[0].trips = ValueSource.imm(1)
        controller, program, sim = self._run_init(spec)
        record = controller.tables.loops[0]
        assert record.valid
        assert record.trips == 1
        assert record.step == 2
        assert record.body_pc == program.symbols["body"]
        assert record.trigger_pc == program.symbols["trig"]

    def test_reg_valued_trips(self):
        spec = ZolcProgramSpec(loops=[loop_spec(trips=ValueSource.reg("s0"))])
        controller, program, sim = self._run_init(spec)
        # s0 held 77 when the mtz executed... but the trigger fires at
        # halt; trips=77 means loop-back to body forever. Avoid by making
        # the trigger label distinct from any executed fall-through: here
        # the 'trig' halt IS the trigger, so the controller redirects.
        # Instead just inspect the table value.
        assert controller.tables.loops[0].trips == 77

    def test_exit_and_entry_records_programmed(self):
        spec = ZolcProgramSpec(
            loops=[loop_spec(trips=ValueSource.imm(1))],
            exits=[ExitInitSpec(record_id=0, branch_label="body",
                                target_label="trig", reset_mask=0b1)],
            entries=[EntryInitSpec(record_id=0, entry_label="body",
                                   loop_id=0)],
        )
        controller, program, sim = self._run_init(spec)
        exit_rec = controller.tables.exits[0]
        assert exit_rec.valid
        assert exit_rec.branch_pc == program.symbols["body"]
        assert exit_rec.reset_mask == 1
        entry_rec = controller.tables.entries[0]
        assert entry_rec.valid
        assert entry_rec.entry_pc == program.symbols["body"]
