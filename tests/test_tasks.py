"""Unit tests for task extraction (the paper's program decomposition)."""

from repro.asm import assemble
from repro.cfg import build_cfg, extract_tasks, find_loops

NON_PERFECT = """
main:   li   t0, 3        # pre task
outer:  li   s0, 1        # outer body task A
        li   t1, 2
inner:  add  s0, s0, s0   # inner body task B
        addi t1, t1, -1
        bne  t1, zero, inner
        add  s1, s1, s0   # outer trailing task C
        addi t0, t0, -1
        bne  t0, zero, outer
        halt              # post task
"""


def _graph(source):
    cfg = build_cfg(assemble(source))
    forest = find_loops(cfg)
    return cfg, forest, extract_tasks(cfg, forest)


class TestTaskPartition:
    def test_non_perfect_nest_tasks(self):
        _, forest, graph = _graph(NON_PERFECT)
        # pre, outer-A, inner-B, outer-C, post
        assert len(graph.tasks) == 5

    def test_tasks_cover_all_instructions(self):
        cfg, _, graph = _graph(NON_PERFECT)
        program = cfg.program
        covered = sum(t.size_instructions for t in graph.tasks)
        assert covered == len(program.instructions)

    def test_task_levels(self):
        _, forest, graph = _graph(NON_PERFECT)
        by_loop = {}
        for task in graph.tasks:
            by_loop.setdefault(task.loop_id, []).append(task)
        assert len(by_loop[None]) == 2          # pre + post
        inner = next(lp for lp in forest.loops if lp.depth == 2)
        outer = next(lp for lp in forest.loops if lp.depth == 1)
        assert len(by_loop[inner.id]) == 1
        assert len(by_loop[outer.id]) == 2      # A and C

    def test_task_at_lookup(self):
        _, _, graph = _graph(NON_PERFECT)
        task = graph.task_at(0)
        assert task is not None and task.loop_id is None
        assert graph.task_at(0x7FFF_FFFF) is None


class TestTransitions:
    def test_loop_back_transition_exists(self):
        _, forest, graph = _graph(NON_PERFECT)
        kinds = {t.kind for t in graph.transitions}
        assert "loop_back" in kinds
        assert "loop_exit" in kinds

    def test_inner_loop_back_targets_itself(self):
        _, forest, graph = _graph(NON_PERFECT)
        inner = next(lp for lp in forest.loops if lp.depth == 2)
        inner_task = graph.tasks_of_loop(inner.id)[0]
        backs = [t for t in graph.transitions
                 if t.src == inner_task.id and t.kind == "loop_back"]
        assert len(backs) == 1
        assert backs[0].dst == inner_task.id

    def test_entry_count_positive(self):
        _, _, graph = _graph(NON_PERFECT)
        assert graph.entry_count >= 4

    def test_straight_line_program(self):
        cfg = build_cfg(assemble("nop\nnop\nhalt\n"))
        forest = find_loops(cfg)
        graph = extract_tasks(cfg, forest)
        assert len(graph.tasks) == 1
        assert all(t.kind == "sequential" for t in graph.transitions)
