"""Unit + property tests for the ALU operations."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cpu import alu
from repro.util.bitops import MASK32, to_signed32

u32 = st.integers(min_value=0, max_value=MASK32)


class TestArithmetic:
    def test_add_wraps(self):
        assert alu.add32(0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        assert alu.sub32(0, 1) == 0xFFFFFFFF

    def test_mul_low(self):
        assert alu.mul32_lo(3, 5) == 15

    def test_mul_low_signed(self):
        assert to_signed32(alu.mul32_lo(0xFFFFFFFF, 7)) == -7  # -1 * 7

    def test_mul_high_positive(self):
        assert alu.mul32_hi(0x40000000, 4) == 1

    def test_mul_high_negative(self):
        # -1 * 1 = -1 -> high word is all ones
        assert alu.mul32_hi(0xFFFFFFFF, 1) == 0xFFFFFFFF

    @given(u32, u32)
    def test_add_matches_python(self, a, b):
        assert alu.add32(a, b) == (a + b) & MASK32

    @given(u32, u32)
    def test_mul_parts_recombine(self, a, b):
        product = to_signed32(a) * to_signed32(b)
        recombined = (alu.mul32_hi(a, b) << 32) | alu.mul32_lo(a, b)
        assert to_signed32(recombined & MASK32) | (recombined >> 32) << 32 \
            or True  # recombination checked below precisely
        assert recombined == product & 0xFFFFFFFFFFFFFFFF


class TestComparisons:
    def test_slt_signed(self):
        assert alu.slt(0xFFFFFFFF, 0) == 1  # -1 < 0
        assert alu.slt(0, 0xFFFFFFFF) == 0

    def test_sltu_unsigned(self):
        assert alu.sltu(0xFFFFFFFF, 0) == 0
        assert alu.sltu(0, 0xFFFFFFFF) == 1

    @given(u32, u32)
    def test_slt_matches_signed_compare(self, a, b):
        assert alu.slt(a, b) == (1 if to_signed32(a) < to_signed32(b) else 0)

    @given(u32, u32)
    def test_sltu_matches_unsigned_compare(self, a, b):
        assert alu.sltu(a, b) == (1 if a < b else 0)


class TestShifts:
    def test_sll(self):
        assert alu.sll(1, 31) == 0x80000000

    def test_sll_drops_overflow(self):
        assert alu.sll(0xFFFFFFFF, 4) == 0xFFFFFFF0

    def test_srl_zero_fills(self):
        assert alu.srl(0x80000000, 31) == 1

    def test_sra_sign_fills(self):
        assert alu.sra(0x80000000, 31) == 0xFFFFFFFF

    def test_shift_amount_masked(self):
        assert alu.sll(1, 33) == alu.sll(1, 1)

    @given(u32, st.integers(min_value=0, max_value=31))
    def test_sra_matches_floor_division(self, value, amount):
        expected = to_signed32(value) >> amount
        assert to_signed32(alu.sra(value, amount)) == expected

    @given(u32, st.integers(min_value=0, max_value=31))
    def test_srl_matches_unsigned_shift(self, value, amount):
        assert alu.srl(value, amount) == value >> amount
