"""Unit tests for the compiled controller plan (core/compiled.py).

The differential suites in ``test_engine.py`` prove the plan-compiled
fast path retires bit-identical sequences; these tests pin the plan's
lifecycle contract directly — when it exists, what invalidates it, and
what its watch sets contain.
"""

from repro.core import CompiledControllerPlan, ZolcController
from repro.core import tables as T
from repro.core.config import UZOLC, ZOLC_FULL, ZOLC_LITE
from repro.cpu.state import RegisterFile


def _program_loop(zolc, loop_id=0, trips=4, initial=0, step=1,
                  index_reg=8, body_pc=0x100, trigger_pc=0x110,
                  parent=T.NO_PARENT, flags=T.FLAG_VALID):
    zolc.write(T.loop_selector(loop_id, T.F_TRIPS), trips)
    zolc.write(T.loop_selector(loop_id, T.F_INITIAL), initial)
    zolc.write(T.loop_selector(loop_id, T.F_STEP), step)
    zolc.write(T.loop_selector(loop_id, T.F_INDEX_REG), index_reg)
    zolc.write(T.loop_selector(loop_id, T.F_BODY_PC), body_pc)
    zolc.write(T.loop_selector(loop_id, T.F_TRIGGER_PC), trigger_pc)
    zolc.write(T.loop_selector(loop_id, T.F_PARENT), parent)
    zolc.write(T.loop_selector(loop_id, T.F_FLAGS), flags)


def _armed_controller(config=ZOLC_LITE, **loop_kwargs):
    zolc = ZolcController(config, regs=RegisterFile())
    _program_loop(zolc, **loop_kwargs)
    zolc.write(T.CTRL_ARM, 1)
    # Flush the arm-time index writes (normally the simulator delivers
    # them at the arming retirement).
    zolc.on_retire(0x0, 0x4)
    return zolc


class TestPlanLifecycle:
    def test_no_plan_before_arm(self):
        zolc = ZolcController(ZOLC_LITE)
        assert zolc.zolc_plan() is None

    def test_plan_withheld_while_arm_writes_pending(self):
        zolc = ZolcController(ZOLC_LITE, regs=RegisterFile())
        _program_loop(zolc)
        zolc.write(T.CTRL_ARM, 1)
        assert zolc.zolc_plan() is None          # pending index writes
        action = zolc.on_retire(0x0, 0x4)
        assert action is not None and action.index_writes
        plan = zolc.zolc_plan()
        assert isinstance(plan, CompiledControllerPlan)

    def test_plan_contains_the_watch_sets(self):
        zolc = _armed_controller(trigger_pc=0x110)
        plan = zolc.zolc_plan()
        assert plan.triggers == ((0x110, 0),)
        assert plan.exits == ()
        assert plan.entries == ()
        assert plan.watched_addresses() == {0x110}

    def test_full_config_plan_covers_exit_and_entry_records(self):
        zolc = ZolcController(ZOLC_FULL, regs=RegisterFile())
        _program_loop(zolc, body_pc=0x100, trigger_pc=0x120)
        zolc.write(T.exit_selector(0, T.X_BRANCH_PC), 0x108)
        zolc.write(T.exit_selector(0, T.X_TARGET_PC), 0x140)
        zolc.write(T.exit_selector(0, T.X_RESET_MASK), 0b1)
        zolc.write(T.exit_selector(0, T.X_FLAGS), T.FLAG_VALID)
        zolc.write(T.entry_selector(0, T.N_ENTRY_PC), 0x100)
        zolc.write(T.entry_selector(0, T.N_LOOP), 0)
        zolc.write(T.entry_selector(0, T.N_FLAGS), T.FLAG_VALID)
        zolc.write(T.CTRL_ARM, 1)
        zolc.on_retire(0x0, 0x4)
        plan = zolc.zolc_plan()
        assert plan.triggers == ((0x120, 0),)
        assert plan.exits == ((0x108, 0),)
        assert plan.entries == ((0x100, 0),)
        assert plan.watched_addresses() == {0x100, 0x108, 0x120}

    def test_disarm_invalidates(self):
        zolc = _armed_controller()
        epoch = zolc.zolc_plan().epoch
        zolc.write(T.CTRL_ARM, 0)
        assert zolc.zolc_plan() is None
        assert zolc.plan_epoch > epoch

    def test_reset_invalidates(self):
        zolc = _armed_controller()
        epoch = zolc.zolc_plan().epoch
        zolc.write(T.CTRL_RESET, 1)
        assert zolc.zolc_plan() is None
        assert zolc.plan_epoch > epoch

    def test_rearm_issues_a_new_epoch_with_a_stable_key(self):
        zolc = _armed_controller()
        first = zolc.zolc_plan()
        zolc.write(T.CTRL_ARM, 1)
        zolc.on_retire(0x0, 0x4)
        second = zolc.zolc_plan()
        assert second.epoch > first.epoch
        # Same tables compile to the same content key, so engines may
        # reuse their dense watch arrays across re-arms.
        assert second.key == first.key

    def test_rearm_with_moved_trigger_changes_the_key(self):
        zolc = _armed_controller(trigger_pc=0x110)
        first = zolc.zolc_plan()
        zolc.write(T.loop_selector(0, T.F_TRIGGER_PC), 0x200)
        zolc.write(T.CTRL_ARM, 1)
        zolc.on_retire(0x0, 0x4)
        second = zolc.zolc_plan()
        assert second.key != first.key
        assert second.triggers == ((0x200, 0),)

    def test_table_rewrite_while_armed_keeps_the_plan(self):
        """Field values are read live at fire time, never compiled.

        The bound-reload extension streams TRIPS/INITIAL rewrites while
        armed; the watch sets do not change, so neither does the plan.
        """
        zolc = _armed_controller()
        plan = zolc.zolc_plan()
        zolc.write(T.loop_selector(0, T.F_TRIPS), 9)
        assert zolc.zolc_plan() is plan
        assert zolc.tables.loops[0].trips == 9

    def test_single_shot_expiry_invalidates(self):
        zolc = _armed_controller(config=UZOLC, trips=2)
        plan = zolc.zolc_plan()
        decision = plan.fire_trigger(0)          # iteration 1: loop back
        assert decision.next_pc == 0x100
        assert zolc.zolc_plan() is plan
        decision = plan.fire_trigger(0)          # iteration 2: expire
        assert decision.next_pc is None
        assert zolc.zolc_plan() is None          # uZOLC disarmed itself
        assert not zolc.active


class TestFireHandlerParity:
    """on_retire dispatches through the same fire handlers the engine
    calls, so counters and status cannot drift between the two routes."""

    def test_trigger_via_on_retire_and_directly_agree(self):
        via_retire = _armed_controller(trips=3)
        direct = _armed_controller(trips=3)
        for _ in range(3):
            action = via_retire.on_retire(0x10c, 0x110)
            assert action is not None and action.is_task_switch
            decision = direct.fire_trigger(0)
            assert action.next_pc == decision.next_pc
            assert action.index_writes == decision.index_writes
        assert via_retire.task_switches == direct.task_switches == 3
        assert ([s.iterations_done for s in via_retire.unit.status]
                == [s.iterations_done for s in direct.unit.status])

    def test_exit_fires_only_on_taken_to_target(self):
        zolc = ZolcController(ZOLC_FULL, regs=RegisterFile())
        _program_loop(zolc, trigger_pc=0x120)
        zolc.write(T.exit_selector(0, T.X_BRANCH_PC), 0x108)
        zolc.write(T.exit_selector(0, T.X_TARGET_PC), 0x140)
        zolc.write(T.exit_selector(0, T.X_RESET_MASK), 0b1)
        zolc.write(T.exit_selector(0, T.X_FLAGS), T.FLAG_VALID)
        zolc.write(T.CTRL_ARM, 1)
        zolc.on_retire(0x0, 0x4)
        plan = zolc.zolc_plan()
        assert not plan.fire_exit(0, 0x10c, False)   # not taken
        assert not plan.fire_exit(0, 0x10c, True)    # wrong target
        assert plan.fire_exit(0, 0x140, True)
        assert zolc.exit_events == 1

    def test_entry_fires_only_from_outside(self):
        zolc = ZolcController(ZOLC_FULL, regs=RegisterFile())
        _program_loop(zolc, body_pc=0x100, trigger_pc=0x120, initial=0,
                      step=1, index_reg=8, trips=4)
        zolc.write(T.entry_selector(0, T.N_ENTRY_PC), 0x100)
        zolc.write(T.entry_selector(0, T.N_LOOP), 0)
        zolc.write(T.entry_selector(0, T.N_FLAGS), T.FLAG_VALID)
        zolc.write(T.CTRL_ARM, 1)
        zolc.on_retire(0x0, 0x4)
        plan = zolc.zolc_plan()
        assert not plan.fire_entry(0, 0x118, 0x100)  # loop-back: inside
        zolc.regs.write(8, 2)                        # index says iter 2
        assert plan.fire_entry(0, 0x80, 0x100)       # entry from outside
        assert zolc.entry_events == 1
        assert zolc.unit.status[0].iterations_done == 2


class TestEngineCompilation:
    def test_watch_arrays_fold_into_the_dispatch_geometry(self):
        from repro.asm import assemble
        from repro.cpu import Simulator
        from repro.cpu.engine import _compile_watch_arrays

        source = "\n".join(["add s0, s0, t0"] * 8 + ["halt"])
        sim = Simulator(assemble(source))
        base = sim.program.text_base
        zolc = _armed_controller(body_pc=base, trigger_pc=base + 0x10)
        plan = zolc.zolc_plan()
        next_watch, exit_watch, far_watch = _compile_watch_arrays(
            sim, plan, 9, base)
        assert next_watch[4] == (None, 0)            # trigger at base+0x10
        assert [w for w in next_watch if w is not None] == [(None, 0)]
        assert all(rec is None for rec in exit_watch)
        assert far_watch == {}
        # Cached by content key: a second call is the same object.
        again = _compile_watch_arrays(sim, plan, 9, base)
        assert again[0] is next_watch

    def test_out_of_text_watch_goes_to_the_far_dict(self):
        from repro.asm import assemble
        from repro.cpu import Simulator
        from repro.cpu.engine import _compile_watch_arrays

        sim = Simulator(assemble("halt\n"))
        base = sim.program.text_base
        zolc = _armed_controller(body_pc=base, trigger_pc=0xDEAD_BEEC)
        plan = zolc.zolc_plan()
        next_watch, _, far_watch = _compile_watch_arrays(sim, plan, 1, base)
        assert all(w is None for w in next_watch)
        assert far_watch == {0xDEAD_BEEC: (None, 0)}
