"""Per-kernel validation: every benchmark assembles, runs and verifies.

These are the ground-truth tests for the workload suite: the baseline
(XRdefault) run of every kernel must reproduce its golden model
bit-exactly, and the loop analysis must see the loop structure the
kernel was designed to exercise.
"""

import pytest

from repro.asm import assemble
from repro.cfg import build_cfg, find_loops
from repro.cpu.simulator import run_program
from repro.workloads.suite import FIGURE2_BENCHMARKS, registry


@pytest.fixture(scope="module")
def reg():
    return registry()


@pytest.mark.parametrize("name", FIGURE2_BENCHMARKS)
class TestFigure2Kernels:
    def test_baseline_matches_golden(self, reg, name):
        kernel = reg.get(name)
        sim = run_program(assemble(kernel.source))
        kernel.check(sim)

    def test_expected_loop_count(self, reg, name):
        kernel = reg.get(name)
        forest = find_loops(build_cfg(assemble(kernel.source)))
        assert len(forest.loops) == kernel.expected_loops

    def test_deterministic_build(self, reg, name):
        from repro.workloads import suite
        rebuilt = [b for b in suite._BUILDERS
                   if b().name == name]
        assert rebuilt, f"no builder produced {name}"
        assert rebuilt[0]().source == reg.get(name).source


class TestSuiteShape:
    def test_twelve_figure2_benchmarks(self):
        assert len(FIGURE2_BENCHMARKS) == 12

    def test_motion_estimation_kernels_present(self):
        # The paper calls out "software implementations of motion
        # estimation kernels" explicitly.
        assert "me_fss" in FIGURE2_BENCHMARKS
        assert "me_tss" in FIGURE2_BENCHMARKS

    def test_registry_contains_early_exit_variant(self, reg):
        kernel = reg.get("me_fss_early")
        sim = run_program(assemble(kernel.source))
        kernel.check(sim)

    def test_unknown_kernel_raises(self, reg):
        with pytest.raises(KeyError):
            reg.get("bogus_kernel")

    def test_names_sorted(self, reg):
        assert reg.names() == sorted(reg.names())

    def test_all_kernels_have_descriptions(self, reg):
        for kernel in reg.all():
            assert kernel.description
            assert kernel.category in ("dsp", "media", "control", "synthetic")


class TestKernelChecksCatchCorruption:
    def test_check_fails_on_wrong_memory(self, reg):
        from repro.workloads.api import KernelCheckError
        kernel = reg.get("vec_sum")
        sim = run_program(assemble(kernel.source))
        address = sim.program.symbols["out"]
        sim.memory.store_word(address, 12345678)
        with pytest.raises(KernelCheckError):
            kernel.check(sim)
