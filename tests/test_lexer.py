"""Unit tests for the assembly lexer."""

import pytest

from repro.asm.errors import AsmError
from repro.asm.lexer import lex, lex_line, split_operands


class TestLexLine:
    def test_plain_instruction(self):
        line = lex_line("add t0, t1, t2", 1)
        assert line.mnemonic == "add"
        assert line.operands == ["t0", "t1", "t2"]

    def test_label_and_instruction(self):
        line = lex_line("loop: addi t0, t0, -1", 3)
        assert line.labels == ["loop"]
        assert line.mnemonic == "addi"

    def test_multiple_labels(self):
        line = lex_line("a: b: nop", 1)
        assert line.labels == ["a", "b"]

    def test_label_only(self):
        line = lex_line("target:", 1)
        assert line.labels == ["target"]
        assert line.mnemonic is None

    def test_comment_hash(self):
        line = lex_line("add t0, t1, t2  # comment, with, commas", 1)
        assert line.operands == ["t0", "t1", "t2"]

    def test_comment_semicolon(self):
        line = lex_line("nop ; trailing", 1)
        assert line.mnemonic == "nop"

    def test_empty_line(self):
        assert lex_line("   ", 1).is_empty()

    def test_comment_only_line(self):
        assert lex_line("# nothing here", 1).is_empty()

    def test_mnemonic_lowercased(self):
        assert lex_line("ADD t0, t1, t2", 1).mnemonic == "add"

    def test_directive(self):
        line = lex_line(".word 1, 2, 3", 1)
        assert line.mnemonic == ".word"
        assert line.operands == ["1", "2", "3"]


class TestSplitOperands:
    def test_memory_operand_kept_whole(self):
        assert split_operands("t0, 4(sp)", 1) == ["t0", "4(sp)"]

    def test_reloc_operand(self):
        assert split_operands("t0, t0, %lo(sym)", 1) == ["t0", "t0", "%lo(sym)"]

    def test_unbalanced_open(self):
        with pytest.raises(AsmError):
            split_operands("t0, 4(sp", 1)

    def test_unbalanced_close(self):
        with pytest.raises(AsmError):
            split_operands("t0, 4)sp(", 1)

    def test_empty_operand_rejected(self):
        with pytest.raises(AsmError):
            split_operands("t0, , t1", 1)


class TestLex:
    def test_skips_blank_lines(self):
        lines = lex("add t0, t1, t2\n\n\nnop\n")
        assert [ln.mnemonic for ln in lines] == ["add", "nop"]

    def test_line_numbers_preserved(self):
        lines = lex("\n\nadd t0, t1, t2\n")
        assert lines[0].number == 3
