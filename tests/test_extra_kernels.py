"""Tests for the extra (non-Figure-2) kernels."""

import pytest

from repro.asm import assemble
from repro.core.config import ZOLC_FULL, ZOLC_LITE
from repro.cpu.simulator import run_program
from repro.transform.zolc_rewrite import rewrite_for_zolc
from repro.workloads.suite import registry


@pytest.fixture(scope="module")
def reg():
    return registry()


class TestHistogram:
    def test_baseline(self, reg):
        kernel = reg.get("histogram")
        sim = run_program(assemble(kernel.source))
        kernel.check(sim)

    def test_zolc(self, reg):
        kernel = reg.get("histogram")
        result = rewrite_for_zolc(kernel.source, ZOLC_LITE)
        assert result.transformed_loop_count == 1
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)

    def test_bins_sum_to_sample_count(self, reg):
        kernel = reg.get("histogram")
        sim = run_program(assemble(kernel.source))
        bins = sim.memory.load_words(sim.program.symbols["hist"], 16)
        assert sum(bins) == 128


class TestVecmaxEarly:
    """Post-loop index reads: the sharpest test of expiry semantics."""

    @pytest.mark.parametrize("name", ["vecmax_early", "vecmax_early_miss"])
    def test_baseline(self, reg, name):
        kernel = reg.get(name)
        sim = run_program(assemble(kernel.source))
        kernel.check(sim)

    def test_lite_rejects_early_exit(self, reg):
        kernel = reg.get("vecmax_early")
        result = rewrite_for_zolc(kernel.source, ZOLC_LITE)
        assert result.transformed_loop_count == 0
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)

    def test_full_break_value_readable(self, reg):
        # After a break the index register holds the break-time value.
        kernel = reg.get("vecmax_early")
        result = rewrite_for_zolc(kernel.source, ZOLC_FULL)
        assert result.transformed_loop_count == 1
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)
        assert sim.zolc.exit_events == 1

    def test_full_expiry_value_matches_software(self, reg):
        # The no-hit variant runs the loop to expiry; the code then reads
        # the index register expecting N — the software-final value.
        kernel = reg.get("vecmax_early_miss")
        result = rewrite_for_zolc(kernel.source, ZOLC_FULL)
        assert result.transformed_loop_count == 1
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)
        assert sim.memory.load_word(sim.program.symbols["found_at"]) == 96

    def test_full_faster_on_both_paths(self, reg):
        for name in ("vecmax_early", "vecmax_early_miss"):
            kernel = reg.get(name)
            base = run_program(assemble(kernel.source)).stats.cycles
            sim = rewrite_for_zolc(kernel.source, ZOLC_FULL).make_simulator()
            sim.run()
            assert sim.stats.cycles < base


class TestPostLoopCounterReads:
    """Counter registers read after loops must match software exactly."""

    def test_down_counter_after_loop(self):
        source = """
        .data
out:    .word 0
        .text
main:   li   t0, 9
loop:   addi s0, s0, 2
        addi t0, t0, -1
        bne  t0, zero, loop
        la   t1, out
        sw   t0, 0(t1)      # software leaves 0
        halt
"""
        baseline = run_program(assemble(source))
        sim = rewrite_for_zolc(source, ZOLC_LITE).make_simulator()
        sim.run()
        assert sim.state.regs["t0"] == baseline.state.regs["t0"] == 0

    def test_up_counter_after_loop(self):
        source = """
        .data
out:    .word 0
        .text
main:   li   t0, 0
loop:   addi s0, s0, 2
        addi t0, t0, 1
        slti at, t0, 13
        bne  at, zero, loop
        la   t1, out
        sw   t0, 0(t1)      # software leaves 13
        halt
"""
        baseline = run_program(assemble(source))
        sim = rewrite_for_zolc(source, ZOLC_LITE).make_simulator()
        sim.run()
        assert sim.state.regs["t0"] == baseline.state.regs["t0"] == 13

    def test_strided_counter_after_loop(self):
        source = """
        .data
out:    .word 0
        .text
main:   li   t0, 0
loop:   addi s0, s0, 1
        addi t0, t0, 4
        slti at, t0, 33
        bne  at, zero, loop
        la   t1, out
        sw   t0, 0(t1)      # software leaves 36 (first value >= 33)
        halt
"""
        baseline = run_program(assemble(source))
        sim = rewrite_for_zolc(source, ZOLC_LITE).make_simulator()
        sim.run()
        assert sim.state.regs["t0"] == baseline.state.regs["t0"] == 36
