"""Reusable Hypothesis strategies for differential testing.

One home for every generator the differential suites share:

* :func:`alu_instructions` / :func:`render_alu_program` — random
  straight-line ALU programs (the original ``test_differential``
  strategies, extracted so the engine suites can reuse them);
* :func:`loop_nest_kernels` — random *structured* kernels: nested
  counted loops in the canonical shapes the ZOLC transform recognises
  (``addi i,i,1; slti at,i,N; bne at,zero,header``), with randomized
  straight-line bodies (ALU + loads/stores into a scratch array) and
  optional forward skip branches.  Multiple sequential nests force
  mid-run re-arms on single-shot controllers.  Every generated program
  terminates by construction: the only backward branches are the
  counted-loop latches;
* :func:`pipeline_configs` — randomized :class:`PipelineConfig` timing
  parameters;
* :func:`machines` — the five paper machines as sampled specs.

Shared observation helpers (:func:`state_tuple`,
:func:`controller_tuple`, :func:`memory_image`) live here too, so every
suite pins the *same* definition of "bit-identical".
"""

from __future__ import annotations

from dataclasses import asdict

from hypothesis import strategies as st

from repro.cpu.pipeline import PipelineConfig
from repro.eval.machines import ALL_MACHINES

# ---------------------------------------------------------------------------
# Straight-line ALU programs
# ---------------------------------------------------------------------------

#: Register pool kept small so instructions interact.
REGS = ["t0", "t1", "t2", "t3"]
REG_INDEX = {"t0": 8, "t1": 9, "t2": 10, "t3": 11}

rr_ops = st.sampled_from(
    ["add", "sub", "and", "or", "xor", "nor", "slt", "sltu", "mul", "mulh"])
shift_ops = st.sampled_from(["sll", "srl", "sra"])
imm_ops = st.sampled_from(["addi", "slti", "sltiu"])
uimm_ops = st.sampled_from(["andi", "ori", "xori"])
alu_regs = st.sampled_from(REGS)

#: Full-range 32-bit register seed values.
reg_seeds = st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1),
                     min_size=4, max_size=4)


@st.composite
def alu_instructions(draw):
    """One random ALU instruction as a ``(kind, op, rd, rs, rt, imm)``
    tuple (see :func:`render_alu_program` for the rendering)."""
    kind = draw(st.integers(min_value=0, max_value=3))
    rd, rs, rt = draw(alu_regs), draw(alu_regs), draw(alu_regs)
    if kind == 0:
        return ("rr", draw(rr_ops), rd, rs, rt, 0)
    if kind == 1:
        return ("shift", draw(shift_ops), rd, rs, 0,
                draw(st.integers(min_value=0, max_value=31)))
    if kind == 2:
        return ("imm", draw(imm_ops), rd, rs, 0,
                draw(st.integers(min_value=-(2**15), max_value=2**15 - 1)))
    return ("uimm", draw(uimm_ops), rd, rs, 0,
            draw(st.integers(min_value=0, max_value=2**16 - 1)))


def render_alu_program(program_spec, seeds) -> str:
    """Render an :func:`alu_instructions` list into assembly source."""
    lines = []
    for reg, seed in zip(REGS, seeds):
        lines.append(f"        li   {reg}, {seed}")
    for kind, op, rd, rs, rt, imm in program_spec:
        if kind == "rr":
            lines.append(f"        {op} {rd}, {rs}, {rt}")
        elif kind == "shift":
            lines.append(f"        {op} {rd}, {rs}, {imm}")
        else:
            lines.append(f"        {op} {rd}, {rs}, {imm}")
    lines.append("        halt")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Structured loop-nest kernels
# ---------------------------------------------------------------------------

#: One induction counter per nesting level (never touched by bodies).
COUNTERS = ("t0", "t1", "t2")
#: Body scratch registers.
TEMPS = ("s0", "s1", "s2", "s3")
#: Base address register for the scratch data array.
BASE_REG = "t8"
#: Scratch array size in words.
SCRATCH_WORDS = 16

_body_rr = st.sampled_from(["add", "sub", "and", "or", "xor", "slt", "mul"])
_temps = st.sampled_from(TEMPS)
_offsets = st.sampled_from([4 * i for i in range(SCRATCH_WORDS)])


@st.composite
def _body_op(draw, pool):
    """One straight-line body instruction over ``pool`` source regs."""
    src = st.sampled_from(pool)
    kind = draw(st.integers(min_value=0, max_value=6))
    if kind == 0:
        return (f"        {draw(_body_rr)} {draw(_temps)}, "
                f"{draw(src)}, {draw(src)}")
    if kind == 1:
        imm = draw(st.integers(min_value=-64, max_value=64))
        return f"        addi {draw(_temps)}, {draw(src)}, {imm}"
    if kind == 2:
        imm = draw(st.integers(min_value=0, max_value=255))
        op = draw(st.sampled_from(["andi", "ori", "xori"]))
        return f"        {op} {draw(_temps)}, {draw(src)}, {imm}"
    if kind == 3:
        return f"        lw   {draw(_temps)}, {draw(_offsets)}({BASE_REG})"
    if kind == 4:
        # Sub-word loads: the traced tier inlines their sign/zero
        # widening against the raw memory buffer, so generated bodies
        # must cover every flavour (word offsets keep halves aligned).
        op = draw(st.sampled_from(["lb", "lbu", "lh", "lhu"]))
        return (f"        {op}  {draw(_temps)}, "
                f"{draw(_offsets)}({BASE_REG})")
    if kind == 5:
        op = draw(st.sampled_from(["sb", "sh"]))
        return (f"        {op}   {draw(_temps)}, "
                f"{draw(_offsets)}({BASE_REG})")
    return f"        sw   {draw(_temps)}, {draw(_offsets)}({BASE_REG})"


@st.composite
def _body(draw, pool, label_counter, min_size=0, max_size=4):
    """A loop body with randomized forward-only control flow.

    Four shapes, all terminating by construction (every branch is
    forward): straight-line, a single skip over the tail, an if/else
    diamond (the fall-through arm rejoins over the else arm through an
    always-taken forward branch), and two nested skips.  The branchy
    shapes are what the guard-based trace JIT records multi-region
    traces across, so the 5-way fuzz drives guards, side exits and
    bridge traces on every machine it samples.
    """
    lines = draw(st.lists(_body_op(pool), min_size=min_size,
                          max_size=max_size))
    shape = draw(st.integers(min_value=0, max_value=3))
    if shape == 1 and len(lines) >= 2:
        # Forward-only skip over the tail of the body.
        label = f"skip{label_counter[0]}"
        label_counter[0] += 1
        cut = draw(st.integers(min_value=1, max_value=len(lines) - 1))
        a, b = draw(_temps), draw(_temps)
        op = draw(st.sampled_from(["beq", "bne"]))
        lines = (lines[:cut]
                 + [f"        {op} {a}, {b}, {label}"]
                 + lines[cut:]
                 + [f"{label}:"])
    elif shape == 2 and len(lines) >= 2:
        # if/else diamond: both arms retire different suffixes, and the
        # then-arm leaves through an unconditional forward branch.
        n = label_counter[0]
        label_counter[0] += 1
        cut = draw(st.integers(min_value=1, max_value=len(lines) - 1))
        a, b = draw(_temps), draw(_temps)
        op = draw(st.sampled_from(["beq", "bne"]))
        lines = ([f"        {op} {a}, {b}, else{n}"]
                 + lines[:cut]
                 + [f"        beq  zero, zero, join{n}",
                    f"else{n}:"]
                 + lines[cut:]
                 + [f"join{n}:"])
    elif shape == 3 and len(lines) >= 3:
        # Two nested skips: the outer branch jumps past the inner
        # branch's join point.
        n = label_counter[0]
        label_counter[0] += 2
        c1 = draw(st.integers(min_value=1, max_value=len(lines) - 2))
        c2 = draw(st.integers(min_value=c1 + 1, max_value=len(lines) - 1))
        a, b = draw(_temps), draw(_temps)
        c, d = draw(_temps), draw(_temps)
        op1 = draw(st.sampled_from(["beq", "bne"]))
        op2 = draw(st.sampled_from(["beq", "bne"]))
        lines = ([f"        {op1} {a}, {b}, skip{n}"]
                 + lines[:c1]
                 + [f"        {op2} {c}, {d}, skip{n + 1}"]
                 + lines[c1:c2]
                 + [f"skip{n + 1}:"]
                 + lines[c2:]
                 + [f"skip{n}:"])
    return lines


@st.composite
def _nest(draw, depth, level, label_counter):
    """One counted loop at ``level`` with ``depth - level`` levels below."""
    counter = COUNTERS[level]
    # Up to 8 trips: uZOLC's legality rule only converts immediate-trip
    # loops of >= 7 iterations (the init sequence must amortise), so the
    # upper range keeps single-shot controllers in the fuzzed space.
    trips = draw(st.integers(min_value=1, max_value=8))
    label = f"loop{label_counter[0]}"
    label_counter[0] += 1
    pool = TEMPS + COUNTERS[:level + 1]
    lines = [f"        li   {counter}, 0", f"{label}:"]
    lines += draw(_body(pool, label_counter, min_size=1))
    # Occasional data-dependent early exit past the latch: a forward
    # branch leaving the loop mid-body (a ZOLC exit-branch shape; only
    # ever shortens the run, so termination is preserved).  Innermost
    # level only — an always-taken exit in an outer body would skip the
    # inner loops' arming preambles, and the re-arm suite asserts that
    # transformed nests actually drive the controller.
    if (level + 1 >= depth
            and draw(st.integers(min_value=0, max_value=3)) == 0):
        early = f"break{label_counter[0]}"
        label_counter[0] += 1
        a, b = draw(_temps), draw(_temps)
        op = draw(st.sampled_from(["beq", "bne"]))
        lines.append(f"        {op} {a}, {b}, {early}")
    else:
        early = None
    if level + 1 < depth:
        lines += draw(_nest(depth, level + 1, label_counter))
        lines += draw(_body(pool, label_counter))
    lines += [f"        addi {counter}, {counter}, 1",
              f"        slti at, {counter}, {trips}",
              f"        bne  at, zero, {label}"]
    if early is not None:
        lines.append(f"{early}:")
    return lines


@st.composite
def loop_nest_kernels(draw, max_nests=2, max_depth=3):
    """A random structured kernel: sequential nests of counted loops.

    Shapes match the transform's ``up_count_slt`` idiom, so ZOLC
    machines drive the generated loops in hardware; two sequential
    nests make single-shot controllers (uZOLC) re-arm mid-run.
    """
    label_counter = [0]
    nests = draw(st.integers(min_value=1, max_value=max_nests))
    lines = ["        .data",
             "scratch: .word " + ", ".join("0" for _ in
                                           range(SCRATCH_WORDS)),
             "        .text",
             "main:"]
    for temp in TEMPS:
        seed = draw(st.integers(min_value=-1000, max_value=1000))
        lines.append(f"        li   {temp}, {seed}")
    lines.append(f"        la   {BASE_REG}, scratch")
    for _ in range(nests):
        depth = draw(st.integers(min_value=1, max_value=max_depth))
        lines += draw(_nest(depth, 0, label_counter))
        lines += draw(_body(TEMPS, label_counter))
    # Make every temp architecturally observable through memory too.
    for i, temp in enumerate(TEMPS):
        lines.append(f"        sw   {temp}, {4 * i}({BASE_REG})")
    lines.append("        halt")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Machines and pipelines
# ---------------------------------------------------------------------------

def machines() -> st.SearchStrategy:
    """One of the five paper machines (specs are plain data)."""
    return st.sampled_from(ALL_MACHINES)


@st.composite
def pipeline_configs(draw):
    """Randomized pipeline timing parameters (all fields small)."""
    return PipelineConfig(
        branch_penalty=draw(st.integers(min_value=0, max_value=3)),
        jump_register_penalty=draw(st.integers(min_value=0, max_value=3)),
        hwloop_penalty=draw(st.integers(min_value=0, max_value=2)),
        load_use_stall=draw(st.integers(min_value=0, max_value=2)),
        mul_extra_cycles=draw(st.integers(min_value=0, max_value=2)),
        zolc_switch_cycles=draw(st.integers(min_value=0, max_value=2)),
    )


# ---------------------------------------------------------------------------
# Engine-resolution spy
# ---------------------------------------------------------------------------

def spy_run_traced(monkeypatch):
    """Wrap ``repro.cpu.simulator.run_traced``, recording each call.

    Returns the list the spy appends to (one ``chain`` flag per call),
    so auto-resolution tests across the suite share one definition of
    the traced entry point's call shape.
    """
    import repro.cpu.simulator as simulator_module

    calls = []
    real = simulator_module.run_traced

    def spy(sim, max_steps, predecoded, chain=True):
        calls.append(chain)
        return real(sim, max_steps, predecoded, chain=chain)

    monkeypatch.setattr(simulator_module, "run_traced", spy)
    return calls


# ---------------------------------------------------------------------------
# Observation helpers: the shared definition of "bit-identical"
# ---------------------------------------------------------------------------

def state_tuple(sim):
    """Everything architecturally and statistically observable."""
    return (sim.state.pc, sim.state.halted, sim.state.regs.snapshot(),
            asdict(sim.stats), sim.timing.stall_cycles,
            sim.timing.flush_cycles, sim.timing._pending_load_dest)


def memory_image(sim) -> bytes:
    """The full simulated memory contents."""
    return sim.memory.load_block(0, sim.memory.size)


def controller_tuple(sim):
    """Controller-internal counters the differential suites pin down."""
    zolc = sim.zolc
    while hasattr(zolc, "inner"):      # unwrap PlanlessZolcPort adapters
        zolc = zolc.inner
    if zolc is None or not hasattr(zolc, "task_switches"):
        return None
    return (zolc.task_switches, zolc.exit_events, zolc.entry_events,
            zolc.arm_count,
            [s.iterations_done for s in zolc.unit.status])
