"""Shared Hypothesis strategies — a thin re-export.

The generator bodies and observation helpers historically lived here;
they are now product code under :mod:`repro.synth` (written against the
``Draw`` seam, so the seeded corpus and the property suites explore the
same kernel space) and :mod:`repro.synth.strategies` drives them with
Hypothesis.  This module only re-exports that surface so existing
``from strategies import ...`` lines keep working.
"""

from repro.synth.strategies import (  # noqa: F401
    BASE_REG,
    COUNTERS,
    REG_INDEX,
    REGS,
    SCRATCH_WORDS,
    TEMPS,
    HypothesisDraw,
    ShapeKnobs,
    alu_instructions,
    alu_regs,
    controller_tuple,
    family_kernels,
    imm_ops,
    loop_nest_kernels,
    machines,
    memory_image,
    pipeline_configs,
    reg_seeds,
    render_alu_program,
    rr_ops,
    shift_ops,
    spy_run_traced,
    state_tuple,
    uimm_ops,
)
