"""Unit tests for the shared module-edit machinery."""

import pytest

from repro.asm.parser import SourceInstruction, parse
from repro.transform.edit import EditError, EditPlan, apply_edits


def entries_from(source):
    return parse(source).text


def si(mnemonic, *operands):
    return SourceInstruction(mnemonic, list(operands), 0)


class TestDeletion:
    def test_delete_removes_entry(self):
        entries = entries_from("nop\nadd t0, t1, t2\nhalt\n")
        plan = EditPlan()
        plan.delete(1)
        out = apply_edits(entries, plan)
        assert [e.instruction.mnemonic for e in out] == ["sll", "halt"]

    def test_deleted_labels_forward(self):
        entries = entries_from("nop\nmark: add t0, t1, t2\nhalt\n")
        plan = EditPlan()
        plan.delete(1)
        out = apply_edits(entries, plan)
        assert out[1].labels == ["mark"]
        assert out[1].instruction.mnemonic == "halt"

    def test_chain_of_deletions_forwards_all_labels(self):
        entries = entries_from("a: nop\nb: nop\nc: nop\nhalt\n")
        plan = EditPlan()
        plan.delete(0)
        plan.delete(1)
        plan.delete(2)
        out = apply_edits(entries, plan)
        assert out[0].labels == ["a", "b", "c"]

    def test_labels_off_end_rejected(self):
        entries = entries_from("nop\nend: halt\n")
        plan = EditPlan()
        plan.delete(1)
        with pytest.raises(EditError):
            apply_edits(entries, plan)


class TestReplacement:
    def test_replace_swaps_instruction(self):
        entries = entries_from("loop: addi t0, t0, -1\nbne t0, zero, loop\nhalt\n")
        plan = EditPlan()
        plan.replace(1, si("dbne", "t0", "loop"))
        out = apply_edits(entries, plan)
        assert out[1].instruction.mnemonic == "dbne"

    def test_replace_keeps_labels(self):
        entries = entries_from("spot: nop\nhalt\n")
        plan = EditPlan()
        plan.replace(0, si("add", "t0", "t1", "t2"))
        out = apply_edits(entries, plan)
        assert out[0].labels == ["spot"]

    def test_delete_and_replace_conflict(self):
        plan = EditPlan()
        plan.delete(1)
        with pytest.raises(EditError):
            plan.replace(1, si("nop"))

    def test_conflict_detected_at_apply(self):
        entries = entries_from("nop\nhalt\n")
        plan = EditPlan()
        plan.replacements[0] = si("nop")
        plan.deletions.add(0)
        with pytest.raises(EditError):
            apply_edits(entries, plan)


class TestLabelsAndInsertions:
    def test_added_label(self):
        entries = entries_from("nop\nhalt\n")
        plan = EditPlan()
        plan.add_label(1, "__marker")
        out = apply_edits(entries, plan)
        assert out[1].labels == ["__marker"]

    def test_added_label_on_deleted_entry_forwards(self):
        entries = entries_from("nop\nadd t0, t1, t2\nhalt\n")
        plan = EditPlan()
        plan.add_label(1, "__trig")
        plan.delete(1)
        out = apply_edits(entries, plan)
        assert out[1].labels == ["__trig"]

    def test_insert_before(self):
        entries = entries_from("nop\nhalt\n")
        plan = EditPlan()
        plan.insert_before(1, [si("addi", "t0", "zero", "1"),
                               si("mtz", "t0", "0")])
        out = apply_edits(entries, plan)
        assert [e.instruction.mnemonic for e in out] == \
            ["sll", "addi", "mtz", "halt"]

    def test_pending_labels_attach_to_insertion(self):
        entries = entries_from("nop\nkilled: add t0, t1, t2\nhalt\n")
        plan = EditPlan()
        plan.delete(1)
        plan.insert_before(2, [si("nop")])
        out = apply_edits(entries, plan)
        # The deleted entry's label lands on the inserted instruction,
        # which occupies the same address.
        assert out[1].labels == ["killed"]
        assert out[1].instruction.mnemonic == "nop"

    def test_insertion_labels_do_not_leak(self):
        entries = entries_from("a: nop\nb: halt\n")
        plan = EditPlan()
        plan.insert_before(1, [si("nop")])
        out = apply_edits(entries, plan)
        assert out[0].labels == ["a"]
        assert out[1].labels == []
        assert out[2].labels == ["b"]
