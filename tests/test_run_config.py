"""The unified RunConfig API and its deprecation shims.

One config value now rides through ``run_kernel`` / ``run_suite`` /
``run_experiment`` / ``run_plan``, plan files, backend construction
and the service submit body.  These tests pin the merge semantics
(``None`` defers), the validation errors, the plan ``run_config``
section (including the both-ways-ambiguous rejection), and — per the
compatibility contract — that every legacy kwarg still works behind
exactly one :class:`DeprecationWarning`.
"""

from pathlib import Path

import pytest

from repro.cpu.pipeline import PipelineConfig
from repro.eval.machines import XR_DEFAULT, machine_by_name
from repro.eval.runner import run_kernel, run_suite
from repro.experiments import (
    BatchBackend,
    ExperimentSpec,
    PlanError,
    ProcessBackend,
    RunConfig,
    get_backend,
    run_experiment,
)
from repro.workloads.suite import registry


def small_spec(**overrides) -> ExperimentSpec:
    defaults = dict(name="rc", kernels=("vec_sum",),
                    machines=(machine_by_name("XRdefault"),))
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            RunConfig(engine="warp")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RunConfig(backend="gpu")

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            RunConfig(jobs=-1)

    def test_zero_max_steps_rejected(self):
        with pytest.raises(ValueError, match="max_steps must be >= 1"):
            RunConfig(max_steps=0)

    def test_path_store_coerced_to_str(self):
        assert RunConfig(store=Path("results")).store == "results"


class TestMerging:
    def test_override_replaces_only_set_choices(self):
        base = RunConfig(engine="fast", jobs=2)
        merged = base.override(jobs=4, backend=None)
        assert merged == RunConfig(engine="fast", jobs=4)

    def test_merged_over_set_fields_win(self):
        override = RunConfig(engine="step")
        base = RunConfig(engine="fast", jobs=3)
        assert override.merged_over(base) == RunConfig(engine="step",
                                                       jobs=3)

    def test_dict_roundtrip_with_pipeline(self):
        config = RunConfig(engine="fast", jobs=2, max_steps=99,
                           pipeline=PipelineConfig(branch_penalty=3))
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown run_config key"):
            RunConfig.from_dict({"engine": "fast", "threads": 2})

    def test_from_dict_allowed_restricts_further(self):
        with pytest.raises(ValueError, match="accepted: engine"):
            RunConfig.from_dict({"store": "x"}, allowed=("engine",))

    def test_resolved_store_tri_state(self, tmp_path):
        assert RunConfig().resolved_store() is None
        assert RunConfig(store=str(tmp_path),
                         cache=False).resolved_store() is None
        store = RunConfig(store=str(tmp_path)).resolved_store()
        assert store is not None and Path(store.root) == tmp_path


class TestRunKernelConfig:
    def test_config_engine_matches_legacy_engine(self):
        kernel = registry().get("vec_sum")
        via_config = run_kernel(kernel, XR_DEFAULT,
                                RunConfig(engine="fast"))
        with pytest.warns(DeprecationWarning, match="run_kernel"):
            via_legacy = run_kernel(kernel, XR_DEFAULT, engine="fast")
        assert via_config.record() == via_legacy.record()

    def test_legacy_positional_pipeline_still_works(self):
        kernel = registry().get("vec_sum")
        pipeline = PipelineConfig(branch_penalty=3)
        with pytest.warns(DeprecationWarning, match="pipeline"):
            legacy = run_kernel(kernel, XR_DEFAULT, pipeline)
        modern = run_kernel(kernel, XR_DEFAULT,
                            RunConfig(pipeline=pipeline))
        assert legacy.cycles == modern.cycles

    def test_config_max_steps_budget_enforced(self):
        from repro.cpu import WatchdogError

        kernel = registry().get("vec_sum")
        with pytest.raises(WatchdogError):
            run_kernel(kernel, XR_DEFAULT, RunConfig(max_steps=5))


class TestRunSuiteConfig:
    def test_legacy_jobs_kwarg_warns(self):
        kernels = [registry().get("vec_sum")]
        with pytest.warns(DeprecationWarning, match="run_suite"):
            suite = run_suite(kernels, [XR_DEFAULT], jobs=1)
        assert suite.get("vec_sum", "XRdefault").verified

    def test_config_engine_reaches_serial_cells(self, monkeypatch):
        from strategies import spy_run_traced

        calls = spy_run_traced(monkeypatch)
        kernels = [registry().get("vec_sum")]
        run_suite(kernels, [XR_DEFAULT], RunConfig(engine="step"))
        assert calls == []
        run_suite(kernels, [XR_DEFAULT], RunConfig(engine="auto"))
        assert calls and all(calls)


class TestRunExperimentConfig:
    def test_legacy_kwargs_warn_once_with_names(self, tmp_path):
        with pytest.warns(DeprecationWarning,
                          match="backend, engine, jobs, store"):
            run_experiment(small_spec(), backend="serial", jobs=1,
                           engine="fast", store=str(tmp_path))

    def test_legacy_positional_backend_string(self):
        with pytest.warns(DeprecationWarning, match="run_experiment"):
            result = run_experiment(small_spec(), "serial")
        assert result.simulated == 1

    def test_backend_instance_stays_undeprecated(self, recwarn):
        result = run_experiment(small_spec(), backend=BatchBackend())
        assert result.simulated == 1
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_wrong_config_type_is_a_type_error(self):
        with pytest.raises(TypeError, match="must be a RunConfig"):
            run_experiment(small_spec(), 42)

    def test_config_overrides_fold_into_the_spec(self, monkeypatch):
        from strategies import spy_run_traced

        calls = spy_run_traced(monkeypatch)
        run_experiment(small_spec(engine="step"),
                       RunConfig(engine="auto"))
        assert calls and all(calls)

    def test_cache_false_bypasses_the_store(self, tmp_path):
        config = RunConfig(store=str(tmp_path))
        run_experiment(small_spec(), config)
        result = run_experiment(small_spec(),
                                config.override(cache=False))
        assert result.simulated == 1 and result.cached == 0


class TestBackendConstruction:
    def test_get_backend_from_config(self):
        backend = get_backend(config=RunConfig(backend="process", jobs=3))
        assert isinstance(backend, ProcessBackend) and backend.jobs == 3

    def test_get_backend_defaults_to_serial(self):
        assert get_backend().name == "serial"

    def test_explicit_args_beat_the_config(self):
        backend = get_backend("batch",
                              config=RunConfig(backend="process", jobs=2))
        assert isinstance(backend, BatchBackend) and backend.jobs == 2

    def test_backends_take_config_jobs(self):
        assert ProcessBackend(config=RunConfig(jobs=5)).jobs == 5
        assert BatchBackend(config=RunConfig(jobs=5)).jobs == 5


class TestPlanRunConfig:
    def _plan(self, **extra) -> dict:
        return {"name": "p", "kernels": ["vec_sum"],
                "machines": ["XRdefault"], **extra}

    def test_run_config_section_feeds_plan_defaults(self):
        spec = ExperimentSpec.from_dict(self._plan(
            run_config={"engine": "fast", "jobs": 2, "backend": "process",
                        "max_steps": 123}))
        assert (spec.engine, spec.jobs, spec.backend, spec.max_steps) \
            == ("fast", 2, "process", 123)

    def test_top_level_keys_beat_the_section(self):
        spec = ExperimentSpec.from_dict(self._plan(
            engine="step", run_config={"jobs": 2}))
        assert spec.engine == "step" and spec.jobs == 2

    def test_key_set_both_ways_is_ambiguous(self):
        with pytest.raises(PlanError, match="both top-level"):
            ExperimentSpec.from_dict(self._plan(
                engine="step", run_config={"engine": "fast"}))

    def test_disallowed_section_key_is_a_plan_error(self):
        with pytest.raises(PlanError, match="bad plan run_config"):
            ExperimentSpec.from_dict(self._plan(
                run_config={"store": "results"}))
