"""Golden-stats regression fixtures for the Figure 2 suite.

``tests/golden/<kernel>.json`` pins the exact cycles/stats payload the
``repro compare`` command produces for every Figure 2 kernel across all
five machines.  Any change to the timing model, the controller, the
code transforms or an engine that shifts a *measured* number — cycles,
stalls, flushes, task switches, init instructions — fails here with a
field-level diff, independent of the engine-vs-engine differential
suites (which would all pass if every engine drifted together).

Regenerate a fixture after an *intentional* modelling change with::

    PYTHONPATH=src python -m repro compare <kernel> --out tests/golden/<kernel>.json

and justify the diff in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.workloads.suite import FIGURE2_BENCHMARKS

GOLDEN_DIR = Path(__file__).parent / "golden"


def test_every_figure2_kernel_has_a_fixture():
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert committed == set(FIGURE2_BENCHMARKS)


@pytest.mark.parametrize("kernel_name", FIGURE2_BENCHMARKS)
def test_live_run_matches_golden(kernel_name, tmp_path):
    golden = json.loads((GOLDEN_DIR / f"{kernel_name}.json").read_text())
    out = tmp_path / "live.json"
    # Through the CLI, so the fixture pins the full payload a user sees
    # (and the documented regeneration command stays honest).
    assert main(["compare", kernel_name, "--out", str(out)]) == 0
    live = json.loads(out.read_text())
    assert live == golden, (
        f"{kernel_name}: measured stats drifted from tests/golden/"
        f"{kernel_name}.json — if the modelling change is intentional, "
        f"regenerate with `repro compare {kernel_name} --out "
        f"tests/golden/{kernel_name}.json`")
