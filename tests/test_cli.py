"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestKernels:
    def test_lists_suite(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "vec_sum" in out
        assert "me_tss" in out


class TestRun:
    def test_default_machine(self, capsys):
        assert main(["run", "vec_sum"]) == 0
        out = capsys.readouterr().out
        assert "verified=True" in out
        assert "cycles" in out

    def test_zolc_machine_extras(self, capsys):
        assert main(["run", "vec_sum", "-m", "ZOLClite"]) == 0
        out = capsys.readouterr().out
        assert "task switches" in out
        assert "loops driven" in out

    def test_unknown_kernel(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_machine(self, capsys):
        assert main(["run", "vec_sum", "-m", "nope"]) == 2


class TestFigure2Jobs:
    def test_jobs_flag_parsed(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["figure2", "-j", "2"])
        assert args.jobs == 2

    def test_jobs_defaults_to_serial(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["figure2"])
        assert args.jobs is None

    def test_negative_jobs_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure2", "-j", "-3"])
        assert excinfo.value.code == 2
        assert "jobs must be >= 0" in capsys.readouterr().err


class TestCompare:
    def test_all_machines_listed(self, capsys):
        assert main(["compare", "quantize"]) == 0
        out = capsys.readouterr().out
        for name in ("XRdefault", "XRhrdwil", "uZOLC", "ZOLClite",
                     "ZOLCfull"):
            assert name in out


class TestJsonOutput:
    def test_run_json(self, capsys):
        import json
        assert main(["run", "vec_sum", "-m", "ZOLClite", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kernel"] == "vec_sum"
        assert record["machine"] == "ZOLClite"
        assert record["cycles"] > 0 and record["verified"]

    def test_compare_json(self, capsys):
        import json
        assert main(["compare", "vec_sum", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["machine"] for r in payload["records"]] == [
            "XRdefault", "XRhrdwil", "uZOLC", "ZOLClite", "ZOLCfull"]

    def test_run_out_file_keeps_text_stdout(self, capsys, tmp_path):
        import json
        out_file = tmp_path / "result.json"
        assert main(["run", "vec_sum", "-o", str(out_file)]) == 0
        assert "verified=True" in capsys.readouterr().out
        assert json.loads(out_file.read_text())["kernel"] == "vec_sum"

    def test_sweep_json(self, capsys):
        import json
        assert main(["sweep", "nesting", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parameter"] == "depth"
        assert len(payload["points"]) == 6


class TestExperimentCommand:
    def _plan(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"name": "t", "kernels": ["vec_sum"],'
            ' "machines": ["XRdefault", "ZOLClite"]}')
        return plan

    def test_runs_plan_and_caches(self, capsys, tmp_path):
        import json
        plan = self._plan(tmp_path)
        store = str(tmp_path / "results")
        assert main(["experiment", str(plan), "--store", store,
                     "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["simulated"] == 2 and first["cached"] == 0
        assert main(["experiment", str(plan), "--store", store,
                     "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["simulated"] == 0 and second["cached"] == 2
        assert first["records"] == second["records"]

    def test_no_cache_bypasses_store(self, capsys, tmp_path):
        import json
        plan = self._plan(tmp_path)
        store = str(tmp_path / "results")
        assert main(["experiment", str(plan), "--store", store]) == 0
        capsys.readouterr()
        assert main(["experiment", str(plan), "--store", store,
                     "--no-cache", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulated"] == 2

    def test_text_report_mentions_cells(self, capsys, tmp_path):
        plan = self._plan(tmp_path)
        assert main(["experiment", str(plan), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "2 cells" in out and "vec_sum" in out

    def _fake_run_plan(self, monkeypatch, seen):
        def fake_run_plan(plan, config):
            seen.update(backend=config.backend, jobs=config.jobs,
                        engine=config.engine)

            class Empty:
                def to_dict(self):
                    return {}

                def render(self):
                    return ""
            return Empty()

        monkeypatch.setattr("repro.experiments.runner.run_plan",
                            fake_run_plan)

    def test_jobs_implies_process_backend(self, tmp_path, monkeypatch):
        seen = {}
        self._fake_run_plan(monkeypatch, seen)
        plan = self._plan(tmp_path)
        assert main(["experiment", str(plan), "-j", "4"]) == 0
        assert seen == {"backend": "process", "jobs": 4, "engine": None}

    def test_no_flags_defer_to_the_plan(self, tmp_path, monkeypatch):
        seen = {}
        self._fake_run_plan(monkeypatch, seen)
        assert main(["experiment", str(self._plan(tmp_path))]) == 0
        # None means "the plan's own backend/jobs/engine keys decide".
        assert seen == {"backend": None, "jobs": None, "engine": None}

    def test_jobs_overrides_the_plans_backend(self, tmp_path, monkeypatch):
        seen = {}
        self._fake_run_plan(monkeypatch, seen)
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"name": "t", "kernels": ["vec_sum"],'
            ' "machines": ["XRdefault"], "backend": "serial"}')
        assert main(["experiment", str(plan), "--jobs", "4"]) == 0
        assert seen == {"backend": "process", "jobs": 4, "engine": None}

    def test_engine_flag_overrides_the_plan(self, tmp_path, monkeypatch):
        seen = {}
        self._fake_run_plan(monkeypatch, seen)
        assert main(["experiment", str(self._plan(tmp_path)),
                     "--engine", "traced"]) == 0
        assert seen == {"backend": None, "jobs": None, "engine": "traced"}

    def test_plan_with_backend_and_jobs_keys_runs(self, capsys, tmp_path):
        import json
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"name": "t", "kernels": ["vec_sum"],'
            ' "machines": ["XRdefault"], "backend": "serial",'
            ' "jobs": 1, "engine": "fast"}')
        assert main(["experiment", str(plan), "--no-cache", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulated"] == 1

    def test_non_integer_jobs_exits_one(self, capsys, tmp_path):
        plan = self._plan(tmp_path)
        assert main(["experiment", str(plan), "-j", "many"]) == 1
        assert "jobs must be an integer" in capsys.readouterr().err

    def test_negative_jobs_exits_one(self, capsys, tmp_path):
        plan = self._plan(tmp_path)
        assert main(["experiment", str(plan), "-j", "-2"]) == 1
        assert "jobs must be >= 0" in capsys.readouterr().err

    def test_missing_plan_exits_one(self, capsys, tmp_path):
        assert main(["experiment", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_plan_exits_one(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"kernels": ["vec_sum"]}')
        assert main(["experiment", str(plan)]) == 1
        assert "missing key" in capsys.readouterr().err

    def test_unknown_engine_flag_exits_one(self, capsys, tmp_path):
        plan = self._plan(tmp_path)
        assert main(["experiment", str(plan), "--engine", "warp"]) == 1
        err = capsys.readouterr().err
        assert "unknown engine 'warp'" in err
        assert "auto" in err and "traced" in err

    def test_plan_with_unknown_engine_key_exits_one(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"name": "t", "kernels": ["vec_sum"],'
            ' "machines": ["XRdefault"], "engine": "warp"}')
        assert main(["experiment", str(plan)]) == 1
        assert "unknown engine 'warp'" in capsys.readouterr().err

    def test_traced_engine_runs_plan(self, capsys, tmp_path):
        import json
        plan = self._plan(tmp_path)
        assert main(["experiment", str(plan), "--no-cache", "--json",
                     "--engine", "traced"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulated"] == 2


class TestRunEngineFlag:
    def test_every_engine_reports_identical_measurements(self, capsys):
        import json
        records = []
        for engine in ("auto", "fast", "traced", "step"):
            assert main(["run", "vec_sum", "-m", "ZOLClite", "--json",
                         "--engine", engine]) == 0
            records.append(json.loads(capsys.readouterr().out))
        assert all(record == records[0] for record in records[1:])

    def test_unknown_engine_exits_one(self, capsys):
        assert main(["run", "vec_sum", "--engine", "warp"]) == 1
        assert "unknown engine 'warp'" in capsys.readouterr().err

    def test_default_engine_resolves_to_traced(self, capsys, monkeypatch):
        """`repro run` without --engine rides the loop-resident tier."""
        from strategies import spy_run_traced

        calls = spy_run_traced(monkeypatch)
        assert main(["run", "vec_sum", "-m", "ZOLClite", "--json"]) == 0
        capsys.readouterr()
        assert calls == [True]

    def test_explicit_step_bypasses_traced(self, capsys, monkeypatch):
        from strategies import spy_run_traced

        calls = spy_run_traced(monkeypatch)
        assert main(["run", "vec_sum", "--json",
                     "--engine", "step"]) == 0
        capsys.readouterr()
        assert calls == []


class TestErrorHandling:
    def test_value_error_exits_one(self, capsys, monkeypatch):
        import repro.cli as cli
        monkeypatch.setattr(cli, "run_kernel",
                            lambda *a, **k: (_ for _ in ()).throw(
                                ValueError("bad argument")))
        assert main(["run", "vec_sum"]) == 1
        assert "bad argument" in capsys.readouterr().err

    def test_golden_check_failure_exits_one(self, capsys, monkeypatch):
        from repro.workloads.api import KernelCheckError
        import repro.cli as cli
        monkeypatch.setattr(cli, "run_kernel",
                            lambda *a, **k: (_ for _ in ()).throw(
                                KernelCheckError("output mismatch")))
        assert main(["run", "vec_sum"]) == 1
        err = capsys.readouterr().err
        assert "golden check failed" in err and "output mismatch" in err


class TestServeSubmit:
    def _plan(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"name": "t", "kernels": ["vec_sum"],'
                        ' "machines": ["XRdefault"]}')
        return plan

    @pytest.fixture()
    def service_url(self, tmp_path):
        from repro.service import JobManager, start_in_thread

        manager = JobManager(store=tmp_path / "results", backend="serial")
        handle = start_in_thread(manager)
        try:
            yield handle.url
        finally:
            handle.stop()
            manager.close()

    def test_submit_twice_second_fully_cached(self, capsys, tmp_path,
                                              service_url):
        import json
        plan = self._plan(tmp_path)
        events_log = tmp_path / "events.ndjson"
        assert main(["submit", str(plan), "--url", service_url,
                     "--events-out", str(events_log), "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["state"] == "done"
        assert first["events"] == {"simulated": 1}
        lines = [json.loads(line) for line in
                 events_log.read_text().splitlines()]
        assert lines[-1]["event"] == "done"
        assert main(["submit", str(plan), "--url", service_url,
                     "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["events"] == {"cached": 1}  # zero simulations
        assert second["result"]["records"] == first["result"]["records"]

    def test_submit_text_report(self, capsys, tmp_path, service_url):
        plan = self._plan(tmp_path)
        assert main(["submit", str(plan), "--url", service_url]) == 0
        out = capsys.readouterr().out
        assert "simulated    vec_sum on XRdefault" in out
        assert "1 simulated, 0 cached" in out

    def test_submit_unreachable_service_exits_one(self, capsys, tmp_path):
        plan = self._plan(tmp_path)
        assert main(["submit", str(plan),
                     "--url", "http://127.0.0.1:9"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_submit_bad_plan_suffix_exits_one(self, capsys, tmp_path,
                                              service_url):
        plan = tmp_path / "plan.yaml"
        plan.write_text("{}")
        assert main(["submit", str(plan), "--url", service_url]) == 1
        assert "must end in" in capsys.readouterr().err

    def test_submit_invalid_plan_body_exits_one(self, capsys, tmp_path,
                                                service_url):
        plan = tmp_path / "plan.json"
        plan.write_text("{not json")
        assert main(["submit", str(plan), "--url", service_url]) == 1
        assert "400" in capsys.readouterr().err


class TestReports:
    def test_resources(self, capsys):
        assert main(["resources"]) == 0
        out = capsys.readouterr().out
        assert "258" in out and "4428" in out

    def test_timing(self, capsys):
        assert main(["timing"]) == 0
        assert "170 MHz" in capsys.readouterr().out


class TestDisasm:
    def test_baseline(self, capsys):
        assert main(["disasm", "vec_sum"]) == 0
        out = capsys.readouterr().out
        assert "bne" in out

    def test_zolc_transformed(self, capsys):
        assert main(["disasm", "vec_sum", "-m", "ZOLClite"]) == 0
        out = capsys.readouterr().out
        assert "mtz" in out
        assert "bne" not in out


class TestExplore:
    def test_structure_report(self, capsys):
        assert main(["explore", "matmul"]) == 0
        out = capsys.readouterr().out
        assert "3 loops" in out
        assert "task" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCheck:
    def test_single_kernel(self, capsys):
        assert main(["check", "-k", "vec_sum", "-m", "ZOLClite"]) == 0
        out = capsys.readouterr().out
        assert "checked 1 kernels x 1 machines" in out
        assert "0 errors" in out

    def test_audit_flag(self, capsys):
        assert main(["check", "-k", "vec_sum", "-m", "ZOLCfull",
                     "--audit-codegen"]) == 0
        assert "(codegen audited)" in capsys.readouterr().out

    def test_info_hidden_unless_verbose(self, capsys):
        assert main(["check", "-k", "dct8x8", "-m", "ZOLCfull"]) == 0
        out = capsys.readouterr().out
        assert "[ZV003]" not in out
        assert main(["check", "-k", "dct8x8", "-m", "ZOLCfull",
                     "-v"]) == 0
        assert "[ZV003]" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        import json

        assert main(["check", "-k", "vec_sum", "-m", "ZOLClite",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernels"] == ["vec_sum"]
        assert payload["machines"] == ["ZOLClite"]
        assert payload["errors"] == 0
        assert isinstance(payload["diagnostics"], list)

    def test_out_file(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "diag.json"
        assert main(["check", "-k", "vec_sum", "-m", "XRdefault",
                     "-o", str(out_file)]) == 0
        capsys.readouterr()
        payload = json.loads(out_file.read_text())
        assert payload["errors"] == 0

    def test_kernel_and_all_conflict(self, capsys):
        assert main(["check", "-k", "vec_sum", "--all"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unknown_kernel(self, capsys):
        assert main(["check", "-k", "nope"]) == 2
        assert "error" in capsys.readouterr().err
