"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestKernels:
    def test_lists_suite(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "vec_sum" in out
        assert "me_tss" in out


class TestRun:
    def test_default_machine(self, capsys):
        assert main(["run", "vec_sum"]) == 0
        out = capsys.readouterr().out
        assert "verified=True" in out
        assert "cycles" in out

    def test_zolc_machine_extras(self, capsys):
        assert main(["run", "vec_sum", "-m", "ZOLClite"]) == 0
        out = capsys.readouterr().out
        assert "task switches" in out
        assert "loops driven" in out

    def test_unknown_kernel(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_machine(self, capsys):
        assert main(["run", "vec_sum", "-m", "nope"]) == 2


class TestFigure2Jobs:
    def test_jobs_flag_parsed(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["figure2", "-j", "2"])
        assert args.jobs == 2

    def test_jobs_defaults_to_serial(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["figure2"])
        assert args.jobs is None

    def test_negative_jobs_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure2", "-j", "-3"])
        assert excinfo.value.code == 2
        assert "jobs must be >= 0" in capsys.readouterr().err


class TestCompare:
    def test_all_machines_listed(self, capsys):
        assert main(["compare", "quantize"]) == 0
        out = capsys.readouterr().out
        for name in ("XRdefault", "XRhrdwil", "uZOLC", "ZOLClite",
                     "ZOLCfull"):
            assert name in out


class TestReports:
    def test_resources(self, capsys):
        assert main(["resources"]) == 0
        out = capsys.readouterr().out
        assert "258" in out and "4428" in out

    def test_timing(self, capsys):
        assert main(["timing"]) == 0
        assert "170 MHz" in capsys.readouterr().out


class TestDisasm:
    def test_baseline(self, capsys):
        assert main(["disasm", "vec_sum"]) == 0
        out = capsys.readouterr().out
        assert "bne" in out

    def test_zolc_transformed(self, capsys):
        assert main(["disasm", "vec_sum", "-m", "ZOLClite"]) == 0
        out = capsys.readouterr().out
        assert "mtz" in out
        assert "bne" not in out


class TestExplore:
    def test_structure_report(self, capsys):
        assert main(["explore", "matmul"]) == 0
        out = capsys.readouterr().out
        assert "3 loops" in out
        assert "task" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
