"""Tests for the programmatic ablation API and the debug table dump."""

import pytest

from repro.core.config import ZOLC_LITE
from repro.core.debug import dump_tables
from repro.eval.ablation import (
    DEFAULT_SUBSET,
    SweepPoint,
    SweepResult,
    run_sweep,
    sweep_branch_penalty,
    sweep_nesting_depth,
    sweep_switch_cost,
)
from repro.transform.zolc_rewrite import rewrite_for_zolc


class TestSweepPoint:
    def test_average_over_improvements(self):
        point = SweepPoint(parameter=2,
                           improvements={"a": 10.0, "b": 20.0, "c": 30.0})
        assert point.average == pytest.approx(20.0)

    def test_average_single_kernel(self):
        point = SweepPoint(parameter=0, improvements={"only": 7.5})
        assert point.average == pytest.approx(7.5)


class TestSweepResultRender:
    def _result(self):
        result = SweepResult(name="demo sweep", parameter_name="penalty",
                             kernel_names=("a", "b"))
        result.points.append(SweepPoint(parameter=0,
                                        improvements={"a": 10.0, "b": 20.0}))
        result.points.append(SweepPoint(parameter=3,
                                        improvements={"a": 30.0, "b": 40.0}))
        return result

    def test_render_lists_every_point(self):
        text = self._result().render()
        assert "demo sweep" in text
        assert "penalty=0:  15.0 %" in text
        assert "penalty=3:  35.0 %" in text

    def test_averages_in_point_order(self):
        assert self._result().averages() == [(0, pytest.approx(15.0)),
                                             (3, pytest.approx(35.0))]

    def test_to_dict_is_json_ready(self):
        import json
        payload = json.loads(self._result().to_json())
        assert payload["parameter"] == "penalty"
        assert payload["points"][1]["average_percent"] == pytest.approx(35.0)
        assert payload["points"][0]["improvements_percent"]["b"] \
            == pytest.approx(20.0)


class TestNamedSweepsOnDefaultSubset:
    """Each named sweep over the 4-kernel subset the paper ablates."""

    def test_default_subset_is_four_kernels(self):
        assert DEFAULT_SUBSET == ("vec_sum", "dot_product", "crc32",
                                  "matmul")

    def test_penalty_sweep_covers_subset(self):
        result = sweep_branch_penalty(penalties=(0, 2))
        assert result.kernel_names == DEFAULT_SUBSET
        for point in result.points:
            assert set(point.improvements) == set(DEFAULT_SUBSET)
            assert all(v > 0 for v in point.improvements.values())
        averages = dict(result.averages())
        assert averages[2] > averages[0]  # gain grows with the penalty

    def test_switch_cost_sweep_covers_subset(self):
        result = sweep_switch_cost(costs=(0, 5))
        assert result.kernel_names == DEFAULT_SUBSET
        for point in result.points:
            assert set(point.improvements) == set(DEFAULT_SUBSET)
        averages = dict(result.averages())
        assert averages[5] < averages[0]  # switch cost erodes the gain

    def test_nesting_sweep_structure(self):
        result = sweep_nesting_depth(depths=(1, 3), trips=3, body_ops=2)
        assert result.kernel_names == ("synthetic nest",)
        assert [p.parameter for p in result.points] == [1, 3]
        averages = dict(result.averages())
        assert averages[3] > averages[1]

    def test_sweeps_share_the_result_store(self, tmp_path):
        # The sweeps are experiment-API consumers: a second identical
        # sweep is served entirely from the content-addressed store.
        first = sweep_branch_penalty(penalties=(0, 2), store=tmp_path)
        second = sweep_branch_penalty(penalties=(0, 2), store=tmp_path)
        assert first.averages() == second.averages()
        assert len(list(tmp_path.glob("*/*.json"))) == 16  # 4k × 2m × 2v


class TestSweeps:
    def test_branch_penalty_monotone(self):
        result = sweep_branch_penalty(penalties=(0, 2),
                                      kernel_names=("vec_sum",))
        averages = [a for _, a in result.averages()]
        assert averages[1] > averages[0]
        assert result.kernel_names == ("vec_sum",)

    def test_switch_cost_erodes(self):
        result = sweep_switch_cost(costs=(0, 5),
                                   kernel_names=("vec_sum",))
        averages = dict(result.averages())
        assert averages[5] < averages[0]

    def test_nesting_depth_grows(self):
        result = sweep_nesting_depth(depths=(2, 4), trips=4, body_ops=2)
        averages = dict(result.averages())
        assert averages[4] > averages[2]

    def test_render_contains_points(self):
        result = sweep_nesting_depth(depths=(2,), trips=3, body_ops=2)
        text = result.render()
        assert "depth=2" in text and "%" in text

    def test_run_sweep_by_name(self):
        result = run_sweep("nesting")
        assert isinstance(result, SweepResult)
        assert len(result.points) == 6

    def test_unknown_sweep(self):
        with pytest.raises(KeyError):
            run_sweep("bogus")


class TestDumpTables:
    def _controller_after_run(self):
        source = """
        .data
out:    .word 0
        .text
main:   li   t0, 4
loop:   addi s0, s0, 1
        addi t0, t0, -1
        bne  t0, zero, loop
        la   t1, out
        sw   s0, 0(t1)
        halt
"""
        result = rewrite_for_zolc(source, ZOLC_LITE)
        sim = result.make_simulator()
        sim.run()
        return sim.zolc

    def test_dump_mentions_loop_parameters(self):
        text = dump_tables(self._controller_after_run())
        assert "trips=4" in text
        assert "index=t0" in text
        assert "task switch(es)" in text

    def test_dump_shows_armed_state(self):
        text = dump_tables(self._controller_after_run())
        assert "ARMED" in text


class TestCliIntegration:
    def test_tables_command(self, capsys):
        from repro.cli import main
        assert main(["tables", "vec_sum"]) == 0
        out = capsys.readouterr().out
        assert "trips=256" in out

    def test_tables_rejects_non_zolc_machine(self, capsys):
        from repro.cli import main
        assert main(["tables", "vec_sum", "-m", "XRdefault"]) == 2

    def test_sweep_command(self, capsys):
        from repro.cli import main
        assert main(["sweep", "nesting"]) == 0
        assert "depth=6" in capsys.readouterr().out
