"""Tests for the programmatic ablation API and the debug table dump."""

import pytest

from repro.core.config import ZOLC_LITE
from repro.core.debug import dump_tables
from repro.eval.ablation import (
    SweepResult,
    run_sweep,
    sweep_branch_penalty,
    sweep_nesting_depth,
    sweep_switch_cost,
)
from repro.transform.zolc_rewrite import rewrite_for_zolc


class TestSweeps:
    def test_branch_penalty_monotone(self):
        result = sweep_branch_penalty(penalties=(0, 2),
                                      kernel_names=("vec_sum",))
        averages = [a for _, a in result.averages()]
        assert averages[1] > averages[0]
        assert result.kernel_names == ("vec_sum",)

    def test_switch_cost_erodes(self):
        result = sweep_switch_cost(costs=(0, 5),
                                   kernel_names=("vec_sum",))
        averages = dict(result.averages())
        assert averages[5] < averages[0]

    def test_nesting_depth_grows(self):
        result = sweep_nesting_depth(depths=(2, 4), trips=4, body_ops=2)
        averages = dict(result.averages())
        assert averages[4] > averages[2]

    def test_render_contains_points(self):
        result = sweep_nesting_depth(depths=(2,), trips=3, body_ops=2)
        text = result.render()
        assert "depth=2" in text and "%" in text

    def test_run_sweep_by_name(self):
        result = run_sweep("nesting")
        assert isinstance(result, SweepResult)
        assert len(result.points) == 6

    def test_unknown_sweep(self):
        with pytest.raises(KeyError):
            run_sweep("bogus")


class TestDumpTables:
    def _controller_after_run(self):
        source = """
        .data
out:    .word 0
        .text
main:   li   t0, 4
loop:   addi s0, s0, 1
        addi t0, t0, -1
        bne  t0, zero, loop
        la   t1, out
        sw   s0, 0(t1)
        halt
"""
        result = rewrite_for_zolc(source, ZOLC_LITE)
        sim = result.make_simulator()
        sim.run()
        return sim.zolc

    def test_dump_mentions_loop_parameters(self):
        text = dump_tables(self._controller_after_run())
        assert "trips=4" in text
        assert "index=t0" in text
        assert "task switch(es)" in text

    def test_dump_shows_armed_state(self):
        text = dump_tables(self._controller_after_run())
        assert "ARMED" in text


class TestCliIntegration:
    def test_tables_command(self, capsys):
        from repro.cli import main
        assert main(["tables", "vec_sum"]) == 0
        out = capsys.readouterr().out
        assert "trips=256" in out

    def test_tables_rejects_non_zolc_machine(self, capsys):
        from repro.cli import main
        assert main(["tables", "vec_sum", "-m", "XRdefault"]) == 2

    def test_sweep_command(self, capsys):
        from repro.cli import main
        assert main(["sweep", "nesting"]) == 0
        assert "depth=6" in capsys.readouterr().out
