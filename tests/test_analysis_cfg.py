"""CFG construction, dominators and natural loops over the engine IR."""

import pytest

from repro.asm import assemble
from repro.cpu.analysis import (
    build_cfg,
    dominates,
    dominators,
    natural_loops,
    reverse_postorder,
)
from repro.cpu.ir import build_ir

LOOP_SOURCE = """
    li   t0, 0
    li   t1, 4
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    halt
"""

DIAMOND_SOURCE = """
    li   t0, 1
    beq  t0, zero, left
    addi t1, t1, 1
    j    join
left:
    addi t2, t2, 1
join:
    halt
"""


def _cfg(source, **kwargs):
    program = assemble(source)
    ir = build_ir(program)
    assert ir is not None
    return program, ir, build_cfg(ir, program.text_base,
                                  program.entry_point(), **kwargs)


class TestBlocks:
    def test_branch_targets_and_falls_are_leaders(self):
        program, ir, cfg = _cfg(LOOP_SOURCE)
        base = program.text_base
        # Blocks: [li, li], [addi, bne], [halt].
        assert [(b.start, b.end) for b in cfg.blocks] == [
            (0, 1), (2, 3), (4, 4)]
        assert cfg.is_leader(base)
        assert cfg.is_leader(base + 8)       # branch target `loop`
        assert cfg.is_leader(base + 16)      # fall-through after bne
        assert not cfg.is_leader(base + 4)

    def test_every_slot_maps_to_its_block(self):
        _, ir, cfg = _cfg(LOOP_SOURCE)
        for slot in range(len(ir)):
            block = cfg.blocks[cfg.block_of_slot[slot]]
            assert block.start <= slot <= block.end

    def test_branch_block_has_taken_and_fallthrough_edges(self):
        _, _, cfg = _cfg(LOOP_SOURCE)
        loop_block = cfg.blocks[1]
        assert set(loop_block.succs) == {1, 2}   # itself + halt block
        assert 1 in cfg.blocks[1].preds          # the back edge
        assert cfg.blocks[2].succs == ()         # halt: no successors

    def test_jump_has_target_only(self):
        program, ir, cfg = _cfg(DIAMOND_SOURCE)
        j_block = cfg.block_at(program.symbols["left"] - 4)
        assert j_block is not None
        join = cfg.block_at(program.symbols["join"])
        assert j_block.succs == (join.bid,)

    def test_watch_pcs_become_leaders(self):
        program, ir, _ = _cfg(LOOP_SOURCE)
        base = program.text_base
        cfg = build_cfg(ir, base, watch_pcs=[base + 12])
        assert cfg.is_leader(base + 12)

    def test_indirect_jump_flagged(self):
        _, _, cfg = _cfg("jr ra\nhalt\n")
        assert cfg.blocks[0].has_indirect
        assert cfg.blocks[0].succs == ()

    def test_out_of_text_lookups_return_none(self):
        program, _, cfg = _cfg(LOOP_SOURCE)
        assert cfg.slot_of(program.text_base - 4) is None
        assert cfg.slot_of(program.text_base + 2) is None
        assert cfg.block_at(0xFFFF0000) is None

    def test_empty_ir_rejected(self):
        with pytest.raises(ValueError):
            build_cfg((), 0)


class TestDominators:
    def test_diamond(self):
        program, _, cfg = _cfg(DIAMOND_SOURCE)
        idom = dominators(cfg)
        entry = cfg.entry
        join = cfg.block_at(program.symbols["join"])
        left = cfg.block_at(program.symbols["left"])
        # The entry dominates everything; neither arm dominates join.
        assert idom[entry] == entry
        assert dominates(idom, entry, join.bid)
        assert not dominates(idom, left.bid, join.bid)
        assert idom[join.bid] == entry

    def test_rpo_starts_at_entry(self):
        _, _, cfg = _cfg(DIAMOND_SOURCE)
        assert reverse_postorder(cfg)[0] == cfg.entry


class TestNaturalLoops:
    def test_branch_back_edge_found(self):
        program, _, cfg = _cfg(LOOP_SOURCE)
        loops = natural_loops(cfg)
        assert len(loops) == 1
        header = cfg.block_at(program.symbols["loop"])
        assert loops[0].header == header.bid
        assert loops[0].body == frozenset({header.bid})
        assert loops[0].back_edges == ((header.bid, header.bid),)

    def test_straightline_has_no_loops(self):
        _, _, cfg = _cfg("li t0, 1\nhalt\n")
        assert natural_loops(cfg) == ()

    def test_trigger_edge_recovers_the_zolc_loop(self):
        # Post-transform body: the latch branch is deleted, so the
        # text falls straight through the trigger — without the
        # controller's redirect edge there is no loop at all.
        source = """
            li   t0, 0
body:
            addi t0, t0, 1
            addi t1, t1, 1
trigger:
            halt
        """
        program = assemble(source)
        ir = build_ir(program)
        base = program.text_base
        body = program.symbols["body"]
        trigger = program.symbols["trigger"]
        bare = build_cfg(ir, base, watch_pcs=[trigger, body])
        assert natural_loops(bare) == ()
        cfg = build_cfg(ir, base, watch_pcs=[trigger, body],
                        trigger_edges={trigger: body})
        loops = natural_loops(cfg)
        assert len(loops) == 1
        header = cfg.block_at(body)
        assert loops[0].header == header.bid
