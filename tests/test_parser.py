"""Unit tests for the assembly parser."""

import pytest

from repro.asm.errors import AsmError
from repro.asm.parser import parse


class TestSegments:
    def test_default_segment_is_text(self):
        module = parse("nop\n")
        assert len(module.text) == 1

    def test_data_segment(self):
        module = parse(".data\nx: .word 1, 2\n.text\nnop\n")
        assert len(module.data) == 1
        assert module.data[0].labels == ["x"]
        assert module.data[0].item.kind == "word"

    def test_data_directive_outside_data_rejected(self):
        with pytest.raises(AsmError):
            parse(".word 1\n")

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AsmError):
            parse(".data\nadd t0, t1, t2\n")


class TestLabels:
    def test_label_attaches_to_next_instruction(self):
        module = parse("loop:\n  nop\n")
        assert module.text[0].labels == ["loop"]

    def test_dangling_text_label_rejected(self):
        with pytest.raises(AsmError):
            parse("nop\nend:\n")

    def test_dangling_data_label_rejected(self):
        with pytest.raises(AsmError):
            parse(".data\nx:\n")

    def test_pseudo_labels_attach_to_first_expansion(self):
        module = parse("go: li t0, 0x12345678\n")
        assert module.text[0].labels == ["go"]
        assert module.text[1].labels == []


class TestPseudoExpansion:
    def test_li_expands(self):
        module = parse("li t0, 5\n")
        assert module.text[0].instruction.mnemonic == "addi"
        assert module.text[0].instruction.pseudo_origin == "li"

    def test_la_expands_to_two(self):
        module = parse("la t0, sym\n")
        assert [e.instruction.mnemonic for e in module.text] == ["lui", "ori"]

    def test_nop_expands_to_sll(self):
        module = parse("nop\n")
        inst = module.text[0].instruction
        assert inst.mnemonic == "sll"
        assert inst.operands == ["zero", "zero", "0"]

    def test_bad_pseudo_operands(self):
        with pytest.raises(AsmError):
            parse("li t0\n")


class TestConstants:
    def test_equ(self):
        module = parse(".equ N, 64\nnop\n")
        assert module.constants["N"] == 64

    def test_equ_hex(self):
        module = parse(".equ MASK, 0xFF\nnop\n")
        assert module.constants["MASK"] == 255

    def test_duplicate_equ_rejected(self):
        with pytest.raises(AsmError):
            parse(".equ N, 1\n.equ N, 2\nnop\n")

    def test_equ_requires_literal(self):
        with pytest.raises(AsmError):
            parse(".equ N, other\nnop\n")

    def test_globl_ignored(self):
        module = parse(".globl main\nmain: nop\n")
        assert module.text[0].labels == ["main"]


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError) as err:
            parse("frobnicate t0\n")
        assert "frobnicate" in str(err.value)

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError) as err:
            parse("nop\nnop\nbogus\n")
        assert err.value.line == 3
