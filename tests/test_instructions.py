"""Unit tests for the instruction set specification table."""

import pytest

from repro.isa.instructions import (
    ALL_MNEMONICS,
    BRANCH_MNEMONICS,
    Category,
    Format,
    Instruction,
    JUMP_MNEMONICS,
    OP_REGIMM,
    OP_SPECIAL,
    SPEC_BY_FUNCT,
    SPEC_BY_MNEMONIC,
    SPEC_BY_OPCODE,
    SPEC_BY_REGIMM,
)


class TestSpecTable:
    def test_every_mnemonic_has_spec(self):
        for mnemonic in ALL_MNEMONICS:
            assert SPEC_BY_MNEMONIC[mnemonic].mnemonic == mnemonic

    def test_opcode_uniqueness(self):
        non_special = [s for s in SPEC_BY_MNEMONIC.values()
                       if s.opcode not in (OP_SPECIAL, OP_REGIMM)]
        opcodes = [s.opcode for s in non_special]
        assert len(opcodes) == len(set(opcodes))

    def test_funct_uniqueness(self):
        functs = [s.funct for s in SPEC_BY_MNEMONIC.values()
                  if s.opcode == OP_SPECIAL]
        assert len(functs) == len(set(functs))

    def test_special_specs_indexed_by_funct(self):
        for funct, spec in SPEC_BY_FUNCT.items():
            assert spec.funct == funct
            assert spec.opcode == OP_SPECIAL

    def test_regimm_specs(self):
        assert SPEC_BY_REGIMM[0x00].mnemonic == "bltz"
        assert SPEC_BY_REGIMM[0x01].mnemonic == "bgez"

    def test_dbne_present(self):
        spec = SPEC_BY_MNEMONIC["dbne"]
        assert spec.category is Category.BRANCH
        assert spec.fmt is Format.I

    def test_zolc_instructions_present(self):
        assert SPEC_BY_MNEMONIC["mtz"].category is Category.ZOLC
        assert SPEC_BY_MNEMONIC["mfz"].category is Category.ZOLC

    def test_branch_set(self):
        assert "bne" in BRANCH_MNEMONICS
        assert "dbne" in BRANCH_MNEMONICS
        assert "j" not in BRANCH_MNEMONICS

    def test_jump_set(self):
        assert JUMP_MNEMONICS == frozenset(("j", "jal"))

    def test_opcode_table_excludes_special(self):
        assert OP_SPECIAL not in SPEC_BY_OPCODE
        assert OP_REGIMM not in SPEC_BY_OPCODE


class TestDefsUses:
    def test_add_defs_rd(self):
        inst = Instruction("add", rd=5, rs=6, rt=7)
        assert inst.defs() == frozenset({5})
        assert inst.uses() == frozenset({6, 7})

    def test_addi_defs_rt(self):
        inst = Instruction("addi", rt=9, rs=10, imm=4)
        assert inst.defs() == frozenset({9})
        assert inst.uses() == frozenset({10})

    def test_zero_register_excluded(self):
        inst = Instruction("add", rd=0, rs=0, rt=3)
        assert inst.defs() == frozenset()
        assert inst.uses() == frozenset({3})

    def test_store_uses_both(self):
        inst = Instruction("sw", rt=4, rs=29, imm=8)
        assert inst.uses() == frozenset({4, 29})
        assert inst.defs() == frozenset()

    def test_load_defs_rt_uses_rs(self):
        inst = Instruction("lw", rt=4, rs=29, imm=8)
        assert inst.defs() == frozenset({4})
        assert inst.uses() == frozenset({29})

    def test_jal_defs_ra(self):
        inst = Instruction("jal", target=0x100)
        assert inst.defs() == frozenset({31})

    def test_dbne_reads_and_writes_rs(self):
        inst = Instruction("dbne", rs=8, imm=-3)
        assert inst.defs() == frozenset({8})
        assert inst.uses() == frozenset({8})


class TestControlFlowPredicates:
    def test_branch(self):
        assert Instruction("bne", rs=1, rt=2, imm=-1).is_branch()
        assert Instruction("bne", rs=1, rt=2, imm=-1).is_control_flow()

    def test_jump(self):
        assert Instruction("j", target=4).is_jump()
        assert not Instruction("j", target=4).is_branch()

    def test_halt_is_control_flow(self):
        assert Instruction("halt").is_control_flow()

    def test_alu_is_not(self):
        assert not Instruction("add", rd=1, rs=2, rt=3).is_control_flow()


class TestBranchTargets:
    def test_branch_target(self):
        inst = Instruction("bne", rs=1, rt=0, imm=-2, address=0x100)
        assert inst.branch_target_address() == 0x100 + 4 - 8

    def test_jump_target(self):
        inst = Instruction("j", target=0x40 // 4, address=0x10)
        assert inst.branch_target_address() == 0x40

    def test_requires_address(self):
        with pytest.raises(ValueError):
            Instruction("bne", rs=1, rt=0, imm=1).branch_target_address()

    def test_non_control_flow_raises(self):
        with pytest.raises(ValueError):
            Instruction("add", address=0).branch_target_address()
