"""Unit tests for the task selection unit (decision cascade)."""

import pytest

from repro.core import tables as T
from repro.core.config import ZOLC_LITE
from repro.core.tables import ZolcTables
from repro.core.task_select import TaskSelectionUnit
from repro.cpu.exceptions import ZolcFaultError


def program_loop(tables, loop_id, trips, body_pc, trigger, index_reg=8,
                 initial=0, step=1, parent=T.NO_PARENT, cascade=False):
    base = lambda f: T.loop_selector(loop_id, f)
    tables.write(base(T.F_TRIPS), trips)
    tables.write(base(T.F_INITIAL), initial & 0xFFFFFFFF)
    tables.write(base(T.F_STEP), step & 0xFFFFFFFF)
    tables.write(base(T.F_INDEX_REG), index_reg)
    tables.write(base(T.F_BODY_PC), body_pc)
    tables.write(base(T.F_TRIGGER_PC), trigger)
    tables.write(base(T.F_PARENT), parent)
    tables.write(base(T.F_FLAGS),
                 T.FLAG_VALID | (T.FLAG_CASCADE if cascade else 0))


@pytest.fixture()
def unit():
    tables = ZolcTables(ZOLC_LITE)
    return tables, TaskSelectionUnit(tables)


class TestSingleLoop:
    def test_loops_back_until_expiry(self, unit):
        tables, tsu = unit
        program_loop(tables, 0, trips=3, body_pc=0x10, trigger=0x20)
        tsu.prepare()
        first = tsu.decide(0)
        assert first.next_pc == 0x10
        assert first.looped_back == 0
        assert first.index_writes == [(8, 1)]
        second = tsu.decide(0)
        assert second.next_pc == 0x10
        assert second.index_writes == [(8, 2)]
        third = tsu.decide(0)
        assert third.next_pc is None
        assert third.expired_loops == [0]

    def test_expiry_resets_for_reentry(self, unit):
        tables, tsu = unit
        program_loop(tables, 0, trips=2, body_pc=0x10, trigger=0x20)
        tsu.prepare()
        tsu.decide(0)
        expired = tsu.decide(0)
        assert expired.next_pc is None
        # Re-entered: counts restart.
        again = tsu.decide(0)
        assert again.next_pc == 0x10

    def test_expiry_writes_final_index_value(self, unit):
        # Software semantics: after the loop the counter holds
        # initial + trips*step, and the ZOLC must leave the same value.
        tables, tsu = unit
        program_loop(tables, 0, trips=2, body_pc=0x10, trigger=0x20,
                     initial=7, step=3)
        tsu.prepare()
        tsu.decide(0)
        decision = tsu.decide(0)
        assert decision.next_pc is None
        assert decision.index_writes == [(8, 13)]  # 7 + 2*3

    def test_down_count_expiry_leaves_zero(self, unit):
        tables, tsu = unit
        program_loop(tables, 0, trips=5, body_pc=0x10, trigger=0x20,
                     initial=5, step=-1)
        tsu.prepare()
        for _ in range(4):
            tsu.decide(0)
        decision = tsu.decide(0)
        assert decision.index_writes == [(8, 0)]  # as software leaves it

    def test_single_trip_loop_expires_immediately(self, unit):
        tables, tsu = unit
        program_loop(tables, 0, trips=1, body_pc=0x10, trigger=0x20)
        tsu.prepare()
        assert tsu.decide(0).next_pc is None

    def test_initial_index_writes(self, unit):
        tables, tsu = unit
        program_loop(tables, 0, trips=2, body_pc=0x10, trigger=0x20,
                     index_reg=9, initial=100)
        tsu.prepare()
        assert tsu.initial_index_writes() == [(9, 100)]


class TestCascade:
    def _nest(self, tables, tsu, outer_trips=2, inner_trips=3):
        program_loop(tables, 0, trips=outer_trips, body_pc=0x10,
                     trigger=T.NO_TRIGGER, index_reg=8)
        program_loop(tables, 1, trips=inner_trips, body_pc=0x20,
                     trigger=0x30, index_reg=9, parent=0, cascade=True)
        tsu.prepare()

    def test_inner_loops_back_first(self, unit):
        tables, tsu = unit
        self._nest(tables, tsu)
        assert tsu.decide(1).next_pc == 0x20

    def test_cascade_on_inner_expiry(self, unit):
        tables, tsu = unit
        self._nest(tables, tsu, outer_trips=2, inner_trips=2)
        tsu.decide(1)                       # inner iteration 1 -> loop back
        decision = tsu.decide(1)            # inner expires, outer decides
        assert decision.next_pc == 0x10     # outer loops back to its body
        assert 1 in decision.expired_loops
        assert decision.looped_back == 0
        # Both registers written: inner reset + outer increment.
        regs = dict(decision.index_writes)
        assert regs[9] == 0                 # inner reset to initial
        assert regs[8] == 1                 # outer advanced

    def test_whole_nest_expires_together(self, unit):
        tables, tsu = unit
        self._nest(tables, tsu, outer_trips=1, inner_trips=1)
        decision = tsu.decide(1)
        assert decision.next_pc is None
        assert decision.expired_loops == [1, 0]

    def test_cascade_cycle_detected(self, unit):
        tables, tsu = unit
        program_loop(tables, 0, trips=1, body_pc=0x10, trigger=0x30,
                     parent=1, cascade=True)
        program_loop(tables, 1, trips=1, body_pc=0x20, trigger=0x40,
                     parent=0, cascade=True)
        tsu.prepare()
        with pytest.raises(ZolcFaultError):
            tsu.decide(0)

    def test_invalid_loop_decision_rejected(self, unit):
        tables, tsu = unit
        tsu.prepare()
        with pytest.raises(ZolcFaultError):
            tsu.decide(0)


class TestDescendantReset:
    def test_loop_back_reinitialises_descendants(self, unit):
        tables, tsu = unit
        program_loop(tables, 0, trips=3, body_pc=0x10, trigger=T.NO_TRIGGER,
                     index_reg=8)
        program_loop(tables, 1, trips=4, body_pc=0x20, trigger=0x30,
                     index_reg=9, initial=50, parent=0, cascade=True)
        tsu.prepare()
        # Simulate an abandoned inner loop: its status says 2 done.
        tsu.status[1].iterations_done = 2
        decision = tsu.decide(0)
        assert decision.next_pc == 0x10
        assert tsu.status[1].iterations_done == 0
        assert (9, 50) in decision.index_writes

    def test_descendants_helper(self, unit):
        tables, tsu = unit
        program_loop(tables, 0, trips=2, body_pc=0x10, trigger=T.NO_TRIGGER)
        program_loop(tables, 1, trips=2, body_pc=0x20, trigger=T.NO_TRIGGER,
                     parent=0, cascade=True)
        program_loop(tables, 2, trips=2, body_pc=0x30, trigger=0x40,
                     parent=1, cascade=True)
        tsu.prepare()
        assert sorted(tsu.descendants(0)) == [1, 2]
        assert tsu.descendants(2) == []


class TestResetLoops:
    def test_mask_resets_status_only(self, unit):
        tables, tsu = unit
        program_loop(tables, 0, trips=5, body_pc=0x10, trigger=0x20)
        program_loop(tables, 1, trips=5, body_pc=0x30, trigger=0x40)
        tsu.prepare()
        tsu.status[0].iterations_done = 3
        tsu.status[1].iterations_done = 2
        tsu.reset_loops(0b01)
        assert tsu.status[0].iterations_done == 0
        assert tsu.status[1].iterations_done == 2
