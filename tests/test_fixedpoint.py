"""Unit tests for repro.util.fixedpoint."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.fixedpoint import (
    float_to_q15,
    q15_to_float,
    saturate16,
    saturate32,
)


class TestQ15:
    def test_one_half(self):
        assert float_to_q15(0.5) == 16384

    def test_negative_one(self):
        assert float_to_q15(-1.0) == -32768

    def test_positive_saturation(self):
        assert float_to_q15(2.0) == 32767

    def test_negative_saturation(self):
        assert float_to_q15(-2.0) == -32768

    def test_roundtrip_is_close(self):
        for value in (-0.75, -0.1, 0.0, 0.33, 0.9):
            assert abs(q15_to_float(float_to_q15(value)) - value) < 1e-4

    @given(st.floats(min_value=-0.999, max_value=0.999))
    def test_roundtrip_error_bounded(self, value):
        assert abs(q15_to_float(float_to_q15(value)) - value) <= 2.0 / 32768


class TestSaturate:
    def test_saturate16_rails(self):
        assert saturate16(40000) == 32767
        assert saturate16(-40000) == -32768
        assert saturate16(123) == 123

    def test_saturate32_rails(self):
        assert saturate32(2**40) == 2**31 - 1
        assert saturate32(-(2**40)) == -(2**31)
        assert saturate32(-5) == -5

    @given(st.integers())
    def test_saturate16_in_range(self, value):
        assert -32768 <= saturate16(value) <= 32767

    @given(st.integers(min_value=-32768, max_value=32767))
    def test_saturate16_identity_in_range(self, value):
        assert saturate16(value) == value
