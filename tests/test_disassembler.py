"""Unit tests for the disassembler."""

from repro.asm.assembler import assemble
from repro.asm.disassembler import (
    disassemble_program,
    disassemble_word,
    format_instruction,
)
from repro.isa.encoding import encode
from repro.isa.instructions import Instruction


class TestFormat:
    def test_rr(self):
        assert format_instruction(Instruction("add", rd=8, rs=9, rt=10)) == \
            "add t0, t1, t2"

    def test_imm(self):
        assert format_instruction(Instruction("addi", rt=8, rs=0, imm=-3)) == \
            "addi t0, zero, -3"

    def test_mem(self):
        assert format_instruction(Instruction("lw", rt=8, rs=29, imm=16)) == \
            "lw t0, 16(sp)"

    def test_shift(self):
        assert format_instruction(Instruction("sll", rd=8, rt=9, shamt=2)) == \
            "sll t0, t1, 2"

    def test_halt_no_operands(self):
        assert format_instruction(Instruction("halt")) == "halt"

    def test_branch_without_address_shows_offset(self):
        assert format_instruction(Instruction("bne", rs=8, rt=0, imm=-2)) == \
            "bne t0, zero, -2"

    def test_branch_with_address_shows_target(self):
        inst = Instruction("bne", rs=8, rt=0, imm=-2, address=8)
        assert format_instruction(inst) == "bne t0, zero, 0x4"

    def test_branch_with_program_shows_label(self):
        program = assemble("loop: nop\nbne t0, zero, loop\n")
        text = format_instruction(program.instructions[1], program)
        assert text == "bne t0, zero, loop"


class TestDisassembleWord:
    def test_round_trip_text(self):
        word = encode(Instruction("xor", rd=2, rs=3, rt=4))
        assert disassemble_word(word) == "xor v0, v1, a0"


class TestDisassembleProgram:
    def test_includes_labels_and_addresses(self):
        program = assemble("main: nop\nloop: addi t0, t0, -1\n"
                           "bne t0, zero, loop\nhalt\n")
        text = disassemble_program(program)
        assert "main:" in text
        assert "loop:" in text
        assert "0x0000" in text
        assert "bne t0, zero, loop" in text

    def test_every_instruction_rendered(self):
        program = assemble("nop\nnop\nhalt\n")
        body_lines = [ln for ln in
                      disassemble_program(program).splitlines()
                      if ln.startswith("  0x")]
        assert len(body_lines) == 3
