"""Unit tests for pseudo-instruction expansion."""

import pytest

from repro.isa.pseudo import PseudoError, expand, is_pseudo


class TestLi:
    def test_small_positive(self):
        assert expand("li", ["t0", "42"]) == [("addi", ["t0", "zero", "42"])]

    def test_small_negative(self):
        assert expand("li", ["t0", "-7"]) == [("addi", ["t0", "zero", "-7"])]

    def test_unsigned_16bit(self):
        assert expand("li", ["t0", "0xEDB8"]) == [("ori", ["t0", "zero", "60856"])]

    def test_large_value_two_instructions(self):
        out = expand("li", ["t0", "0x12345678"])
        assert out == [("lui", ["t0", "4660"]), ("ori", ["t0", "t0", "22136"])]

    def test_large_negative(self):
        out = expand("li", ["t0", "-2147483648"])
        assert out == [("lui", ["t0", "32768"]), ("ori", ["t0", "t0", "0"])]

    def test_expansion_length_is_value_independent_above_16_bits(self):
        assert len(expand("li", ["t0", "0x10000"])) == 2
        assert len(expand("li", ["t0", "0x1FFFF"])) == 2

    def test_bad_literal(self):
        with pytest.raises(PseudoError):
            expand("li", ["t0", "forty-two"])

    def test_wrong_arity(self):
        with pytest.raises(PseudoError):
            expand("li", ["t0"])


class TestLa:
    def test_emits_hi_lo_pair(self):
        out = expand("la", ["s0", "table"])
        assert out == [
            ("lui", ["s0", "%hi(table)"]),
            ("ori", ["s0", "s0", "%lo(table)"]),
        ]


class TestBranches:
    def test_b(self):
        assert expand("b", ["loop"]) == [("beq", ["zero", "zero", "loop"])]

    def test_beqz(self):
        assert expand("beqz", ["t0", "done"]) == [("beq", ["t0", "zero", "done"])]

    def test_bnez(self):
        assert expand("bnez", ["t0", "loop"]) == [("bne", ["t0", "zero", "loop"])]

    def test_blt_uses_at(self):
        out = expand("blt", ["t0", "t1", "loop"])
        assert out == [("slt", ["at", "t0", "t1"]),
                       ("bne", ["at", "zero", "loop"])]

    def test_bge_inverts(self):
        out = expand("bge", ["t0", "t1", "loop"])
        assert out == [("slt", ["at", "t0", "t1"]),
                       ("beq", ["at", "zero", "loop"])]

    def test_bgt_swaps(self):
        out = expand("bgt", ["t0", "t1", "loop"])
        assert out[0] == ("slt", ["at", "t1", "t0"])

    def test_bltu_unsigned(self):
        out = expand("bltu", ["t0", "t1", "loop"])
        assert out[0][0] == "sltu"


class TestSimple:
    def test_move(self):
        assert expand("move", ["t0", "t1"]) == [("or", ["t0", "t1", "zero"])]

    def test_nop(self):
        assert expand("nop", []) == [("sll", ["zero", "zero", "0"])]

    def test_neg(self):
        assert expand("neg", ["t0", "t1"]) == [("sub", ["t0", "zero", "t1"])]

    def test_not(self):
        assert expand("not", ["t0", "t1"]) == [("nor", ["t0", "t1", "zero"])]

    def test_subi(self):
        assert expand("subi", ["t0", "t1", "5"]) == [("addi", ["t0", "t1", "-5"])]


class TestRegistry:
    def test_is_pseudo(self):
        assert is_pseudo("li")
        assert is_pseudo("move")
        assert not is_pseudo("add")

    def test_expand_rejects_real_instruction(self):
        with pytest.raises(PseudoError):
            expand("add", ["t0", "t1", "t2"])
