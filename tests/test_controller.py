"""Unit tests for the ZOLC controller (initialization + active modes)."""

import pytest

from repro.core import tables as T
from repro.core.config import UZOLC, ZOLC_FULL, ZOLC_LITE
from repro.core.controller import ZolcController
from repro.cpu.exceptions import ZolcFaultError
from repro.cpu.state import RegisterFile


def program_loop(ctrl, loop_id, trips, body_pc, trigger, index_reg=8,
                 initial=0, step=1, parent=T.NO_PARENT, cascade=False):
    def base(f):
        return T.loop_selector(loop_id, f)

    ctrl.write(base(T.F_TRIPS), trips)
    ctrl.write(base(T.F_INITIAL), initial & 0xFFFFFFFF)
    ctrl.write(base(T.F_STEP), step & 0xFFFFFFFF)
    ctrl.write(base(T.F_INDEX_REG), index_reg)
    ctrl.write(base(T.F_BODY_PC), body_pc)
    ctrl.write(base(T.F_TRIGGER_PC), trigger)
    ctrl.write(base(T.F_PARENT), parent)
    ctrl.write(base(T.F_FLAGS),
               T.FLAG_VALID | (T.FLAG_CASCADE if cascade else 0))


def arm(ctrl):
    ctrl.write(T.CTRL_ARM, 1)


@pytest.fixture()
def ctrl():
    controller = ZolcController(ZOLC_LITE)
    controller.attach(RegisterFile())
    return controller


class TestModes:
    def test_inactive_until_armed(self, ctrl):
        assert not ctrl.active
        assert ctrl.on_retire(0, 4) is None

    def test_arm_and_status(self, ctrl):
        program_loop(ctrl, 0, trips=2, body_pc=0x10, trigger=0x20)
        arm(ctrl)
        assert ctrl.active
        assert ctrl.read(T.CTRL_STATUS) == 1
        assert ctrl.arm_count == 1

    def test_disarm(self, ctrl):
        program_loop(ctrl, 0, trips=2, body_pc=0x10, trigger=0x20)
        arm(ctrl)
        ctrl.write(T.CTRL_ARM, 0)
        assert ctrl.read(T.CTRL_STATUS) == 0

    def test_reset_clears_tables(self, ctrl):
        program_loop(ctrl, 0, trips=2, body_pc=0x10, trigger=0x20)
        ctrl.write(T.CTRL_RESET, 0)
        assert ctrl.tables.valid_loops() == []
        assert not ctrl.active

    def test_arm_validates(self, ctrl):
        program_loop(ctrl, 0, trips=0, body_pc=0x10, trigger=0x20)
        with pytest.raises(ZolcFaultError):
            arm(ctrl)

    def test_status_is_read_only(self, ctrl):
        with pytest.raises(ZolcFaultError):
            ctrl.write(T.CTRL_STATUS, 1)

    def test_readback_through_mfz_path(self, ctrl):
        program_loop(ctrl, 0, trips=9, body_pc=0x10, trigger=0x20)
        assert ctrl.read(T.loop_selector(0, T.F_TRIPS)) == 9
        assert ctrl.read(T.CTRL_ARM) == 0


class TestArmWrites:
    def test_initial_index_values_ride_next_retirement(self, ctrl):
        program_loop(ctrl, 0, trips=2, body_pc=0x10, trigger=0x20,
                     index_reg=9, initial=42)
        arm(ctrl)
        action = ctrl.on_retire(0x08, 0x0C)
        assert action is not None
        assert (9, 42) in action.index_writes
        # Delivered exactly once.
        assert ctrl.on_retire(0x0C, 0x10) is None


class TestTriggers:
    def test_loop_back_redirect(self, ctrl):
        program_loop(ctrl, 0, trips=3, body_pc=0x10, trigger=0x20)
        arm(ctrl)
        ctrl.on_retire(0x08, 0x0C)  # drain arm writes
        action = ctrl.on_retire(0x1C, 0x20)
        assert action is not None and action.is_task_switch
        assert action.next_pc == 0x10
        assert ctrl.task_switches == 1

    def test_expiry_falls_through(self, ctrl):
        program_loop(ctrl, 0, trips=1, body_pc=0x10, trigger=0x20)
        arm(ctrl)
        ctrl.on_retire(0x08, 0x0C)
        action = ctrl.on_retire(0x1C, 0x20)
        assert action is not None
        assert action.next_pc is None

    def test_non_trigger_addresses_ignored(self, ctrl):
        program_loop(ctrl, 0, trips=3, body_pc=0x10, trigger=0x20)
        arm(ctrl)
        ctrl.on_retire(0x08, 0x0C)
        assert ctrl.on_retire(0x10, 0x14) is None

    def test_shared_trigger_rejected_at_arm(self, ctrl):
        program_loop(ctrl, 0, trips=2, body_pc=0x10, trigger=0x20)
        program_loop(ctrl, 1, trips=2, body_pc=0x14, trigger=0x20)
        with pytest.raises(ZolcFaultError):
            arm(ctrl)


class TestCapacity:
    def test_too_many_task_entries(self):
        config = ZOLC_LITE
        ctrl = ZolcController(config)
        ctrl.attach(RegisterFile())
        # 17 loops would exceed 32 task entries, but max_loops=8 binds
        # first; build a custom small-LUT config instead.
        from repro.core.config import ZolcConfig
        tiny = ZolcConfig("tiny", max_loops=4, max_task_entries=4,
                          entries_per_loop=1, multi_entry_exit=False)
        ctrl = ZolcController(tiny)
        ctrl.attach(RegisterFile())
        for loop_id, trigger in ((0, 0x20), (1, 0x30), (2, 0x40)):
            program_loop(ctrl, loop_id, trips=2, body_pc=0x10,
                         trigger=trigger, index_reg=8 + loop_id)
        with pytest.raises(ZolcFaultError):
            arm(ctrl)


class TestSingleShot:
    def test_uzolc_disarms_after_expiry(self):
        ctrl = ZolcController(UZOLC)
        ctrl.attach(RegisterFile())
        program_loop(ctrl, 0, trips=2, body_pc=0x10, trigger=0x20)
        arm(ctrl)
        ctrl.on_retire(0x08, 0x0C)
        first = ctrl.on_retire(0x1C, 0x20)
        assert first.next_pc == 0x10
        final = ctrl.on_retire(0x1C, 0x20)
        assert final.next_pc is None
        assert not ctrl.active

    def test_uzolc_rearm(self):
        ctrl = ZolcController(UZOLC)
        ctrl.attach(RegisterFile())
        program_loop(ctrl, 0, trips=1, body_pc=0x10, trigger=0x20)
        arm(ctrl)
        ctrl.on_retire(0x08, 0x0C)
        ctrl.on_retire(0x1C, 0x20)
        assert not ctrl.active
        arm(ctrl)
        assert ctrl.active
        assert ctrl.arm_count == 2


class TestExitRecords:
    def _with_exit(self):
        ctrl = ZolcController(ZOLC_FULL)
        ctrl.attach(RegisterFile())
        program_loop(ctrl, 0, trips=5, body_pc=0x10, trigger=0x30)
        ctrl.write(T.exit_selector(0, T.X_BRANCH_PC), 0x18)
        ctrl.write(T.exit_selector(0, T.X_TARGET_PC), 0x50)
        ctrl.write(T.exit_selector(0, T.X_RESET_MASK), 0b1)
        ctrl.write(T.exit_selector(0, T.X_FLAGS), T.FLAG_VALID)
        arm(ctrl)
        ctrl.on_retire(0x04, 0x08)  # drain arm writes
        return ctrl

    def test_taken_exit_resets_loop(self):
        ctrl = self._with_exit()
        ctrl.unit.status[0].iterations_done = 3
        action = ctrl.on_retire(0x18, 0x50, taken=True)
        assert action is not None
        assert action.next_pc is None
        assert ctrl.unit.status[0].iterations_done == 0
        assert ctrl.exit_events == 1

    def test_untaken_exit_branch_ignored(self):
        ctrl = self._with_exit()
        ctrl.unit.status[0].iterations_done = 3
        assert ctrl.on_retire(0x18, 0x1C) is None
        assert ctrl.unit.status[0].iterations_done == 3

    def test_exit_suppresses_trigger_decision(self):
        # Exit target that coincides with the loop trigger address must
        # not run the loop-back decision.
        ctrl = ZolcController(ZOLC_FULL)
        ctrl.attach(RegisterFile())
        program_loop(ctrl, 0, trips=5, body_pc=0x10, trigger=0x30)
        ctrl.write(T.exit_selector(0, T.X_BRANCH_PC), 0x18)
        ctrl.write(T.exit_selector(0, T.X_TARGET_PC), 0x30)
        ctrl.write(T.exit_selector(0, T.X_RESET_MASK), 0b1)
        ctrl.write(T.exit_selector(0, T.X_FLAGS), T.FLAG_VALID)
        arm(ctrl)
        ctrl.on_retire(0x04, 0x08)
        action = ctrl.on_retire(0x18, 0x30, taken=True)
        assert action.next_pc is None
        assert ctrl.task_switches == 0
        assert ctrl.exit_events == 1


class TestEntryRecords:
    def _with_entry(self, reg_value):
        ctrl = ZolcController(ZOLC_FULL)
        regs = RegisterFile()
        regs.write(8, reg_value)
        ctrl.attach(regs)
        program_loop(ctrl, 0, trips=10, body_pc=0x10, trigger=0x30,
                     index_reg=8, initial=0, step=1)
        ctrl.write(T.entry_selector(0, T.N_ENTRY_PC), 0x10)
        ctrl.write(T.entry_selector(0, T.N_LOOP), 0)
        ctrl.write(T.entry_selector(0, T.N_FLAGS), T.FLAG_VALID)
        arm(ctrl)
        # Note: arm writes would reset r8; drain them against a dummy
        # retirement *outside* the loop, then restore the seed value.
        ctrl.on_retire(0x00, 0x04)
        regs.write(8, reg_value)
        return ctrl, regs

    def test_side_entry_seeds_progress(self):
        ctrl, regs = self._with_entry(reg_value=6)
        ctrl.on_retire(0x08, 0x10, taken=True)
        assert ctrl.unit.status[0].iterations_done == 6
        assert ctrl.entry_events == 1
        # 4 more decisions until expiry
        for _ in range(3):
            assert ctrl.on_retire(0x2C, 0x30).next_pc == 0x10
        assert ctrl.on_retire(0x2C, 0x30).next_pc is None

    def test_entry_past_final_iteration_faults(self):
        ctrl, regs = self._with_entry(reg_value=10)
        with pytest.raises(ZolcFaultError):
            ctrl.on_retire(0x08, 0x10, taken=True)

    def test_arrival_from_inside_not_entry(self):
        ctrl, regs = self._with_entry(reg_value=6)
        ctrl.unit.status[0].iterations_done = 2
        # pc 0x14 is inside [body_pc, trigger): not a side entry.
        assert ctrl.on_retire(0x14, 0x10) is None
        assert ctrl.unit.status[0].iterations_done == 2
