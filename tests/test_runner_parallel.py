"""The process-pool suite runner must be a drop-in for the serial one."""

from repro.cpu.pipeline import PipelineConfig
from repro.eval.machines import M_ZOLC_LITE, XR_DEFAULT
from repro.eval.runner import run_suite
from repro.workloads.api import Kernel
from repro.workloads.suite import registry


def _result_grid(suite):
    return {key: (r.cycles, r.instructions, r.stats.stall_cycles,
                  r.stats.flush_cycles, r.verified)
            for key, r in suite.results.items()}


class TestParallelSuite:
    def test_matches_serial_and_preserves_order(self):
        kernels = [registry().get("vec_sum"), registry().get("quantize")]
        machines = [XR_DEFAULT, M_ZOLC_LITE]
        serial = run_suite(kernels, machines)
        parallel = run_suite(kernels, machines, jobs=2)
        assert _result_grid(parallel) == _result_grid(serial)
        assert list(parallel.results) == list(serial.results)

    def test_pipeline_config_forwarded_to_workers(self):
        kernels = [registry().get("vec_sum")]
        pipeline = PipelineConfig(branch_penalty=3)
        serial = run_suite(kernels, [XR_DEFAULT], pipeline=pipeline)
        parallel = run_suite(kernels, [XR_DEFAULT], pipeline=pipeline, jobs=2)
        assert _result_grid(parallel) == _result_grid(serial)
        assert (parallel.get("vec_sum", "XRdefault").cycles
                > run_suite(kernels, [XR_DEFAULT]).get(
                    "vec_sum", "XRdefault").cycles)

    def test_adhoc_kernel_falls_back_to_serial_with_warning(self):
        # A kernel outside the registry cannot be resolved by name in a
        # worker; the runner runs it in-process and warns that the
        # requested parallelism was ignored.
        import pytest
        base = registry().get("vec_sum")
        adhoc = Kernel(name="not_registered", description="ad-hoc",
                       source=base.source, check=base.check)
        with pytest.warns(RuntimeWarning, match="jobs=4 ignored"):
            suite = run_suite([adhoc, base], [XR_DEFAULT], jobs=4)
        assert suite.get("not_registered", "XRdefault").verified

    def test_adhoc_machine_ships_to_workers(self):
        # Machines are data and travel by value: a custom ZOLC variant
        # that is in no registry parallelizes like the paper machines.
        from repro.core.config import ZolcConfig
        from repro.eval.machines import MachineSpec
        custom = MachineSpec("ZOLCcustom", "zolc", ZolcConfig(
            name="ZOLCcustom", max_loops=2, max_task_entries=8,
            entries_per_loop=1, multi_entry_exit=False))
        kernels = [registry().get("vec_sum"), registry().get("quantize")]
        serial = run_suite(kernels, [XR_DEFAULT, custom])
        parallel = run_suite(kernels, [XR_DEFAULT, custom], jobs=2)
        assert _result_grid(parallel) == _result_grid(serial)
        assert parallel.machines() == ["XRdefault", "ZOLCcustom"]

    def test_jobs_one_is_serial(self):
        kernels = [registry().get("vec_sum")]
        suite = run_suite(kernels, [XR_DEFAULT], jobs=1)
        assert suite.get("vec_sum", "XRdefault").verified

    def test_negative_jobs_rejected(self):
        import pytest
        kernels = [registry().get("vec_sum")]
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            run_suite(kernels, [XR_DEFAULT], jobs=-2)
