"""Unit tests for the workload API helpers."""

import pytest

from repro.asm import assemble
from repro.cpu.simulator import run_program
from repro.workloads.api import (
    Kernel,
    KernelCheckError,
    KernelRegistry,
    expect_word,
    expect_words,
    read_word_signed,
    read_words_signed,
    rng,
    words,
)


class TestRng:
    def test_deterministic_per_name(self):
        a = rng("fir").randint(0, 100, size=8)
        b = rng("fir").randint(0, 100, size=8)
        assert list(a) == list(b)

    def test_different_names_differ(self):
        a = list(rng("fir").randint(0, 1000, size=16))
        b = list(rng("fft").randint(0, 1000, size=16))
        assert a != b


class TestWords:
    def test_renders_chunks(self):
        text = words(range(10), per_line=4)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].strip() == ".word 0, 1, 2, 3"

    def test_empty_gets_placeholder(self):
        assert ".word 0" in words([])

    def test_roundtrips_through_assembler(self):
        source = f".data\nx:\n{words([1, -2, 3])}\n.text\nnop\nhalt\n"
        program = assemble(source)
        sim = run_program(program)
        assert read_words_signed(sim, "x", 3) == [1, -2, 3]


class TestExpectations:
    def _sim(self):
        return run_program(assemble(
            ".data\nx: .word 5, -6\n.text\nnop\nhalt\n"))

    def test_expect_words_passes(self):
        expect_words(self._sim(), "x", [5, -6], "ctx")

    def test_expect_words_fails_with_context(self):
        with pytest.raises(KernelCheckError) as err:
            expect_words(self._sim(), "x", [5, 7], "my-kernel")
        assert "my-kernel" in str(err.value)
        assert "got -6 want 7" in str(err.value)

    def test_expect_word(self):
        expect_word(self._sim(), "x", 5, "ctx")
        assert read_word_signed(self._sim(), "x") == 5

    def test_wraparound_values_normalised(self):
        sim = run_program(assemble(
            ".data\nx: .word -1\n.text\nnop\nhalt\n"))
        expect_words(sim, "x", [0xFFFFFFFF], "wrap")  # same bits


class TestRegistry:
    def test_duplicate_rejected(self):
        reg = KernelRegistry()
        kernel = Kernel(name="k", description="d", source="halt\n",
                        check=lambda sim: None)
        reg.register(kernel)
        with pytest.raises(ValueError):
            reg.register(kernel)

    def test_get_unknown_lists_available(self):
        reg = KernelRegistry()
        reg.register(Kernel(name="only", description="d", source="halt\n",
                            check=lambda sim: None))
        with pytest.raises(KeyError) as err:
            reg.get("other")
        assert "only" in str(err.value)
