"""Concurrent writers never tear the content-addressed store.

The bugfix under test: every saver stages into its *own* tmp file
(pid + per-process counter) before the atomic rename, so N processes
hammering one key can never interleave writes into a shared staging
path and promote a torn JSON file — and ``load`` treats any record
missing required measurement columns as a miss, so even a hypothetical
partial file is re-simulated, never served.
"""

import json
from concurrent.futures import ProcessPoolExecutor, wait

import pytest

from repro.experiments.result import MEASUREMENT_COLUMNS
from repro.experiments.store import ResultStore

KEY = "ab" * 32

#: A record carrying every required measurement column.
FULL_RECORD = {column: index for index, column in
               enumerate(MEASUREMENT_COLUMNS)}


def _record(tag: int) -> dict:
    # Same shape, different payload per writer, so torn interleavings
    # (were they possible) would be observable as parse/shape errors.
    return {**FULL_RECORD, "cycles": tag, "padding": "x" * 512}


def _hammer(root, salt: int, rounds: int) -> int:
    store = ResultStore(root)
    for index in range(rounds):
        store.save(KEY, _record(salt * rounds + index))
    return rounds


class TestConcurrentWriters:
    def test_hammer_same_key_every_observed_file_parses(self, tmp_path):
        writers, rounds = 4, 40
        store = ResultStore(tmp_path)
        path = store._path(KEY)
        observed = 0
        with ProcessPoolExecutor(max_workers=writers) as pool:
            futures = [pool.submit(_hammer, tmp_path, salt, rounds)
                       for salt in range(writers)]
            # Read continuously while the writers race: every observed
            # file content must be one complete record.
            while not all(future.done() for future in futures):
                try:
                    text = path.read_text()
                except OSError:
                    continue
                record = json.loads(text)  # a torn file raises here
                assert set(MEASUREMENT_COLUMNS) <= set(record)
                observed += 1
            wait(futures)
            assert sum(future.result() for future in futures) \
                == writers * rounds
        # The final state parses and loads, and no staging files leak.
        final = store.load(KEY)
        assert final is not None and final["padding"] == "x" * 512
        leftovers = [p.name for p in path.parent.iterdir()
                     if p.name != path.name]
        assert leftovers == []
        assert observed > 0  # the race was actually exercised

    def test_concurrent_saves_of_distinct_keys(self, tmp_path):
        # Distinct keys in one shard directory: mkdir/rename races are
        # benign and every cell lands complete.
        store = ResultStore(tmp_path)
        keys = [f"ab{index:02x}" + "c" * 60 for index in range(8)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            list(pool.map(_save_one, [(tmp_path, key) for key in keys]))
        for key in keys:
            assert store.load(key) == _record(7)
        assert len(store) == len(keys)


def _save_one(task) -> None:
    root, key = task
    ResultStore(root).save(key, _record(7))


class TestLoadValidation:
    def test_full_record_round_trips(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(KEY, FULL_RECORD)
        assert store.load(KEY) == FULL_RECORD

    @pytest.mark.parametrize("column", ["cycles", "verified",
                                        "stall_cycles"])
    def test_record_missing_a_measurement_column_is_a_miss(
            self, tmp_path, column):
        store = ResultStore(tmp_path)
        partial = dict(FULL_RECORD)
        del partial[column]
        store.save(KEY, partial)
        assert store.load(KEY) is None

    def test_non_mapping_record_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store._path(KEY).parent.mkdir(parents=True)
        store._path(KEY).write_text(json.dumps([1, 2, 3]))
        assert store.load(KEY) is None

    def test_extra_columns_are_preserved(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(KEY, {**FULL_RECORD, "note": "kept"})
        assert store.load(KEY)["note"] == "kept"
