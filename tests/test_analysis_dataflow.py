"""Dataflow analyses (def/use, reaching defs, liveness, memory)."""

from repro.asm import assemble
from repro.cpu.analysis import (
    ACCESS_WIDTHS,
    MemAccess,
    block_def_use,
    build_cfg,
    live_memory,
    live_registers,
    memory_accesses,
    reaching_definitions,
    read_registers,
    written_registers,
)
from repro.cpu.ir import build_ir
from repro.isa.registers import register_index

T0 = register_index("t0")
T1 = register_index("t1")
T2 = register_index("t2")
A0 = register_index("a0")


def _cfg(source):
    program = assemble(source)
    ir = build_ir(program)
    assert ir is not None
    return program, ir, build_cfg(ir, program.text_base,
                                  program.entry_point())


class TestDefUse:
    def test_block_summary(self):
        _, ir, cfg = _cfg("""
            li   t0, 1
            addi t1, t0, 2
            add  t0, t1, t2
            halt
        """)
        summary = block_def_use(cfg, ir)[0]
        assert summary.defs == frozenset({T0, T1})
        # t0 is defined before its first read: only t2 is exposed.
        assert summary.uses == frozenset({T2})

    def test_zero_register_never_counted(self):
        _, ir, cfg = _cfg("add zero, t0, t1\nhalt\n")
        summary = block_def_use(cfg, ir)[0]
        assert 0 not in summary.defs
        assert summary.uses == frozenset({T0, T1})

    def test_written_and_read_helpers(self):
        _, ir, _ = _cfg("""
            li   t0, 1
            sw   t1, 0(t2)
            halt
        """)
        assert written_registers(ir, [0, 1]) == frozenset({T0})
        assert read_registers(ir, [1]) == frozenset({T1, T2})


class TestReachingDefinitions:
    def test_branch_merges_definitions(self):
        program, ir, cfg = _cfg("""
            li   t0, 1
            beq  t0, zero, other
            li   t1, 2
            j    join
other:
            li   t1, 3
join:
            halt
        """)
        rd = reaching_definitions(cfg, ir)
        join = cfg.block_at(program.symbols["join"])
        sites = rd.defs_reaching(join.bid, T1)
        # Both `li t1` definitions reach the join.
        assert {slot for slot, _ in sites} == {2, 4}

    def test_redefinition_kills(self):
        _, ir, cfg = _cfg("""
            li   t0, 1
            li   t0, 2
            halt
        """)
        rd = reaching_definitions(cfg, ir)
        assert rd.reach_out[0] == frozenset({(1, T0)})


class TestLiveness:
    def test_loop_keeps_counter_live(self):
        program, ir, cfg = _cfg("""
            li   t0, 4
loop:
            addi t0, t0, -1
            bne  t0, zero, loop
            halt
        """)
        lv = live_registers(cfg, ir)
        loop = cfg.block_at(program.symbols["loop"])
        assert T0 in lv.live_in[loop.bid]
        assert T0 in lv.live_out[loop.bid]   # live around the back edge

    def test_dead_past_halt(self):
        _, ir, cfg = _cfg("li t0, 1\nhalt\n")
        lv = live_registers(cfg, ir)
        assert lv.live_out[cfg.blocks[-1].bid] == frozenset()


class TestMemoryAccesses:
    def test_widths_and_kinds(self):
        _, ir, _ = _cfg("""
            lb   t0, 0(a0)
            lhu  t1, 2(a0)
            sw   t2, 4(a0)
            halt
        """)
        accesses = memory_accesses(ir)
        assert [(a.kind, a.width, a.base, a.offset) for a in accesses] \
            == [("load", 1, A0, 0), ("load", 2, A0, 2),
                ("store", 4, A0, 4)]
        assert set(ACCESS_WIDTHS) == {
            "lb", "lbu", "lh", "lhu", "lw", "sb", "sh", "sw"}

    def test_overlap_needs_shared_base(self):
        a = MemAccess(0, 0, "load", 4, A0, 0)
        b = MemAccess(1, 4, "store", 4, A0, 4)
        c = MemAccess(2, 8, "store", 4, T0, 0)
        d = MemAccess(3, 12, "store", 2, A0, 2)
        assert not a.overlaps(b)        # same base, disjoint ranges
        assert a.overlaps(c)            # different bases: may alias
        assert a.overlaps(d)            # bytes [2,4) overlap [0,4)

    def test_subword_store_does_not_kill_word(self):
        # sb covers one byte of the word a later lw reads: the word
        # location must stay live through the store.
        _, ir, cfg = _cfg("""
            sb   t0, 0(a0)
            lw   t1, 0(a0)
            halt
        """)
        ml = live_memory(cfg, ir)
        assert (A0, 0, 4) in ml.live_in[0]

    def test_full_store_kills(self):
        _, ir, cfg = _cfg("""
            sw   t0, 0(a0)
            lw   t1, 0(a0)
            halt
        """)
        ml = live_memory(cfg, ir)
        assert (A0, 0, 4) not in ml.live_in[0]
