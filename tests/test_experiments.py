"""The unified experiment API: specs, plan files, backends, store."""

import json

import pytest

from repro.core.config import ZolcConfig
from repro.cpu.pipeline import PipelineConfig
from repro.eval.machines import (
    M_ZOLC_LITE,
    MachineRegistry,
    MachineSpec,
    XR_DEFAULT,
    machine_by_name,
)
from repro.eval.runner import run_kernel
from repro.experiments import (
    Cell,
    ExperimentSpec,
    PlanError,
    ResultStore,
    SweepAxis,
    cell_key,
    get_backend,
    load_plan,
    parse_plan,
    run_experiment,
    run_plan,
)
from repro.workloads.suite import FIGURE2_BENCHMARKS, registry

CUSTOM_ZOLC = ZolcConfig(name="ZOLCtest", max_loops=2, max_task_entries=8,
                         entries_per_loop=1, multi_entry_exit=False)


def small_spec(**overrides) -> ExperimentSpec:
    defaults = dict(name="small", kernels=("vec_sum", "dot_product"),
                    machines=(XR_DEFAULT, M_ZOLC_LITE))
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestMachineSpec:
    def test_round_trips_through_dict(self):
        spec = MachineSpec("custom", "zolc", CUSTOM_ZOLC)
        assert MachineSpec.from_dict(spec.to_dict()) == spec

    def test_from_registry_name(self):
        assert MachineSpec.from_dict("ZOLClite") is M_ZOLC_LITE

    def test_from_dict_with_canonical_config_name(self):
        spec = MachineSpec.from_dict(
            {"name": "mylite", "kind": "zolc", "zolc": "ZOLClite"})
        assert spec.zolc_config is M_ZOLC_LITE.zolc_config

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown machine kind"):
            MachineSpec("x", "quantum")

    def test_zolc_kind_requires_config(self):
        with pytest.raises(ValueError, match="needs a zolc_config"):
            MachineSpec("x", "zolc")

    def test_bad_zolc_params_rejected(self):
        with pytest.raises(ValueError, match="bad zolc config"):
            MachineSpec.from_dict(
                {"name": "x", "kind": "zolc", "zolc": {"bogus": 1}})

    def test_registry_rejects_conflicting_reregistration(self):
        reg = MachineRegistry()
        reg.register(XR_DEFAULT)
        reg.register(XR_DEFAULT)  # identical re-registration is fine
        with pytest.raises(ValueError, match="already registered"):
            reg.register(MachineSpec("XRdefault", "hwlp"))
        assert reg.get("xrdefault") is XR_DEFAULT
        assert reg.names() == ["XRdefault"]


class TestSweepAxis:
    def test_fields_default_to_name(self):
        axis = SweepAxis("branch_penalty", (0, 1))
        assert axis.fields == ("branch_penalty",)

    def test_unknown_pipeline_field_rejected(self):
        with pytest.raises(ValueError, match="not a PipelineConfig field"):
            SweepAxis("x", (1,), fields=("warp_factor",))

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepAxis("branch_penalty", ())


class TestExperimentSpec:
    def test_round_trips_through_json(self):
        spec = small_spec(
            machines=(XR_DEFAULT, MachineSpec("c", "zolc", CUSTOM_ZOLC)),
            pipeline=PipelineConfig(branch_penalty=2),
            sweep=(SweepAxis("load_use_stall", (0, 1)),),
            repeats=2, max_steps=1000)
        assert ExperimentSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_plan_jobs_without_backend_implies_process(self):
        # Same convention as the CLI's --jobs flag: a plan asking for
        # workers without naming a backend gets the process backend.
        spec = ExperimentSpec.from_dict(
            {"name": "t", "kernels": ["vec_sum"],
             "machines": ["XRdefault"], "jobs": 4})
        assert spec.backend == "process" and spec.jobs == 4
        explicit = ExperimentSpec.from_dict(
            {"name": "t", "kernels": ["vec_sum"],
             "machines": ["XRdefault"], "jobs": 4, "backend": "serial"})
        assert explicit.backend == "serial"  # explicit choice wins

    def test_backend_jobs_engine_round_trip(self):
        spec = small_spec(backend="process", jobs=2, engine="step")
        restored = ExperimentSpec.from_dict(json.loads(spec.to_json()))
        assert restored == spec
        assert (restored.backend, restored.jobs, restored.engine) \
            == ("process", 2, "step")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            small_spec(backend="quantum")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            small_spec(engine="turbo")

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            small_spec(jobs=-1)

    def test_kernel_selectors_expand(self):
        spec = small_spec(kernels=("@figure2", "vec_sum"))
        assert spec.kernel_names() == list(FIGURE2_BENCHMARKS)
        everything = small_spec(kernels=("@all",)).kernel_names()
        assert set(everything) == set(registry().names())

    def test_unknown_kernel_rejected_at_expansion(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            small_spec(kernels=("nope",)).kernel_names()

    def test_axis_points_cross_product(self):
        spec = small_spec(sweep=(
            SweepAxis("branch_penalty", (0, 1)),
            SweepAxis("load_use_stall", (1, 2)),
        ))
        assert spec.axis_points() == [
            {"branch_penalty": 0, "load_use_stall": 1},
            {"branch_penalty": 0, "load_use_stall": 2},
            {"branch_penalty": 1, "load_use_stall": 1},
            {"branch_penalty": 1, "load_use_stall": 2},
        ]

    def test_pipeline_for_applies_all_axis_fields(self):
        spec = small_spec(sweep=(SweepAxis(
            "penalty", (3,),
            fields=("branch_penalty", "jump_register_penalty")),))
        pipeline = spec.pipeline_for({"penalty": 3})
        assert pipeline.branch_penalty == 3
        assert pipeline.jump_register_penalty == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="no kernels"):
            ExperimentSpec(name="x", kernels=(), machines=(XR_DEFAULT,))
        with pytest.raises(ValueError, match="no machines"):
            ExperimentSpec(name="x", kernels=("vec_sum",), machines=())
        with pytest.raises(ValueError, match="repeats"):
            small_spec(repeats=0)
        with pytest.raises(ValueError, match="duplicate sweep axis"):
            small_spec(sweep=(SweepAxis("branch_penalty", (0,)),
                              SweepAxis("branch_penalty", (1,))))


class TestPlanParsing:
    def test_json_and_toml_agree(self):
        as_json = parse_plan(json.dumps({
            "name": "p", "kernels": ["vec_sum"],
            "machines": ["XRdefault"]}), "json")
        as_toml = parse_plan(
            'name = "p"\nkernels = ["vec_sum"]\nmachines = ["XRdefault"]\n',
            "toml")
        assert as_json == as_toml

    def test_invalid_json_is_plan_error(self):
        with pytest.raises(PlanError, match="invalid JSON"):
            parse_plan("{nope", "json")

    def test_unknown_keys_rejected(self):
        with pytest.raises(PlanError, match="unknown plan keys"):
            parse_plan(json.dumps({"kernels": ["vec_sum"],
                                   "machines": ["XRdefault"],
                                   "shards": 4}), "json")

    def test_missing_machines_rejected(self):
        with pytest.raises(PlanError, match="missing key"):
            parse_plan(json.dumps({"kernels": ["vec_sum"]}), "json")

    def test_string_kernels_rejected_not_iterated(self):
        with pytest.raises(PlanError, match="'kernels' must be a list"):
            parse_plan(json.dumps({"kernels": "vec_sum",
                                   "machines": ["XRdefault"]}), "json")

    def test_string_machines_rejected_not_iterated(self):
        with pytest.raises(PlanError, match="'machines' must be a list"):
            parse_plan(json.dumps({"kernels": ["vec_sum"],
                                   "machines": "XRdefault"}), "json")

    def test_load_plan_rejects_unknown_suffix(self, tmp_path):
        plan = tmp_path / "plan.yaml"
        plan.write_text("{}")
        with pytest.raises(PlanError, match="must end in"):
            load_plan(plan)

    def test_example_plans_load(self):
        fig2 = load_plan("examples/figure2_plan.json")
        assert fig2.kernel_names() == list(FIGURE2_BENCHMARKS)
        assert [m.name for m in fig2.machines] == [
            "XRdefault", "XRhrdwil", "ZOLClite"]
        smoke = load_plan("examples/smoke_plan.toml")
        assert smoke.machines[1].zolc_config.max_loops == 4
        assert smoke.sweep[0].fields == ("branch_penalty",
                                         "jump_register_penalty")


class TestResultStore:
    def test_key_changes_with_every_input(self):
        base = cell_key("k", "src", M_ZOLC_LITE, PipelineConfig(), 100)
        assert cell_key("k", "src", M_ZOLC_LITE, PipelineConfig(), 100) == base
        variants = [
            cell_key("k", "src2", M_ZOLC_LITE, PipelineConfig(), 100),
            cell_key("k", "src", XR_DEFAULT, PipelineConfig(), 100),
            cell_key("k", "src", M_ZOLC_LITE,
                     PipelineConfig(branch_penalty=2), 100),
            cell_key("k", "src", M_ZOLC_LITE, PipelineConfig(), 200),
            cell_key("k", "src", M_ZOLC_LITE, PipelineConfig(), 100,
                     repeat=1),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_save_load_round_trip(self, tmp_path):
        from repro.experiments.result import MEASUREMENT_COLUMNS

        record = {column: 7 for column in MEASUREMENT_COLUMNS}
        store = ResultStore(tmp_path)
        assert store.load("ab" * 32) is None
        store.save("ab" * 32, record)
        assert store.load("ab" * 32) == record
        assert len(store) == 1

    def test_corrupt_cell_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("cd" * 32, {"cycles": 1})
        next(tmp_path.glob("*/*.json")).write_text("{truncated")
        assert store.load("cd" * 32) is None

    def test_incomplete_cell_is_a_miss(self, tmp_path):
        # A record missing required measurement columns (e.g. from a
        # writer that died mid-record under the old shared-tmp scheme)
        # is re-simulated, never served.
        store = ResultStore(tmp_path)
        store.save("ef" * 32, {"cycles": 1})
        assert store.load("ef" * 32) is None


class TestRunExperiment:
    def test_matches_direct_run_kernel(self):
        result = run_experiment(small_spec())
        reg = registry()
        for kernel in ("vec_sum", "dot_product"):
            for machine in (XR_DEFAULT, M_ZOLC_LITE):
                direct = run_kernel(reg.get(kernel), machine)
                record = result.get(kernel, machine.name)
                assert record["cycles"] == direct.cycles
                assert record["instructions"] == direct.instructions

    def test_second_run_fully_cached(self, tmp_path):
        first = run_experiment(small_spec(), store=tmp_path)
        second = run_experiment(small_spec(), store=tmp_path)
        assert first.simulated == 4 and first.cached == 0
        assert second.simulated == 0 and second.cached == 4
        assert first.records == second.records

    def test_kernel_source_change_invalidates_only_that_kernel(
            self, tmp_path, monkeypatch):
        run_experiment(small_spec(), store=tmp_path)
        kernel = registry().get("vec_sum")
        monkeypatch.setattr(kernel, "source", kernel.source + "\n")
        rerun = run_experiment(small_spec(), store=tmp_path)
        assert rerun.simulated == 2  # vec_sum on both machines
        assert rerun.cached == 2

    def test_process_backend_matches_serial_with_custom_machine(self):
        spec = small_spec(machines=(
            XR_DEFAULT, MachineSpec("ZOLCtest", "zolc", CUSTOM_ZOLC)))
        serial = run_experiment(spec, backend="serial")
        process = run_experiment(spec, backend="process", jobs=2)
        assert serial.records == process.records
        assert process.get("vec_sum", "ZOLCtest")["verified"]

    def test_repeats_simulate_once_but_record_each(self, tmp_path):
        spec = small_spec(kernels=("vec_sum",), machines=(XR_DEFAULT,),
                          repeats=3)
        result = run_experiment(spec, store=tmp_path)
        assert len(result.records) == 3
        assert result.simulated == 1 and result.deduplicated == 2
        assert result.cached == 0  # nothing came from the store this run
        assert [r["repeat"] for r in result.records] == [0, 1, 2]
        rerun = run_experiment(spec, store=tmp_path)
        assert rerun.simulated == 0 and rerun.cached == 3

    def test_repeats_without_store_report_no_cache_hits(self):
        spec = small_spec(kernels=("vec_sum",), machines=(XR_DEFAULT,),
                          repeats=3)
        result = run_experiment(spec, store=None)
        assert result.cached == 0
        assert result.simulated == 1 and result.deduplicated == 2
        assert "2 deduplicated" in result.render()

    def test_sweep_axis_columns_present(self):
        spec = small_spec(kernels=("vec_sum",), machines=(XR_DEFAULT,),
                          sweep=(SweepAxis("branch_penalty", (0, 2)),))
        result = run_experiment(spec)
        assert result.axes == ("branch_penalty",)
        cheap = result.get("vec_sum", "XRdefault", branch_penalty=0)
        dear = result.get("vec_sum", "XRdefault", branch_penalty=2)
        assert dear["cycles"] > cheap["cycles"]
        assert result.select(branch_penalty=2) == [dear]

    def test_result_round_trips_to_json(self):
        result = run_experiment(small_spec(kernels=("vec_sum",),
                                           machines=(XR_DEFAULT,)))
        payload = json.loads(result.to_json())
        assert payload["records"][0]["kernel"] == "vec_sum"
        assert payload["simulated"] == 1
        assert "cycles" in payload["records"][0]

    def test_render_mentions_cache_counts(self, tmp_path):
        result = run_experiment(small_spec(), store=tmp_path)
        text = result.render()
        assert "4 simulated, 0 cached" in text
        assert "vec_sum" in text and "ZOLClite" in text

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("quantum")

    def test_backend_instance_accepted(self):
        backend = get_backend("process", jobs=2)
        result = run_experiment(small_spec(kernels=("vec_sum",)),
                                backend=backend)
        assert result.simulated == 2

    def test_spec_backend_honoured_when_caller_defers(self, monkeypatch):
        import repro.experiments.runner as runner_module
        chosen = {}
        real = runner_module.get_backend

        def spy(name, jobs=None):
            chosen.update(name=name, jobs=jobs)
            return real("serial")

        monkeypatch.setattr(runner_module, "get_backend", spy)
        run_experiment(small_spec(kernels=("vec_sum",),
                                  backend="process", jobs=2))
        assert chosen == {"name": "process", "jobs": 2}

    def test_caller_backend_overrides_spec(self, monkeypatch):
        import repro.experiments.runner as runner_module
        chosen = {}
        real = runner_module.get_backend

        def spy(name, jobs=None):
            chosen.update(name=name, jobs=jobs)
            return real("serial")

        monkeypatch.setattr(runner_module, "get_backend", spy)
        # Forcing serial while the spec asks for 4 workers drops the
        # jobs request — flagged, never silent.
        with pytest.warns(RuntimeWarning, match="jobs=4 ignored"):
            run_experiment(small_spec(kernels=("vec_sum",),
                                      backend="process", jobs=4),
                           backend="serial")
        assert chosen["name"] == "serial"

    def test_engine_choice_is_bit_identical_and_cache_compatible(
            self, tmp_path):
        fast = run_experiment(small_spec(engine="fast"), store=tmp_path)
        stepped = run_experiment(small_spec(engine="step"), store=tmp_path)
        assert fast.records == stepped.records
        # Engines share cache identity: the stepped rerun is all hits.
        assert stepped.simulated == 0 and stepped.cached == 4

    def test_traced_engine_plan_key_is_bit_identical(self):
        traced = run_experiment(small_spec(engine="traced"))
        stepped = run_experiment(small_spec(engine="step"))
        assert traced.records == stepped.records

    def test_engine_override_beats_the_spec(self):
        base = run_experiment(small_spec(engine="step"))
        overridden = run_experiment(small_spec(engine="step"),
                                    engine="traced")
        assert overridden.records == base.records

    def test_unknown_engine_override_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_experiment(small_spec(), engine="warp")

    def test_auto_engine_resolves_to_traced(self, monkeypatch):
        """The spec's default `auto` rides the loop-resident tier."""
        from strategies import spy_run_traced

        spec = small_spec()
        assert spec.engine == "auto"
        calls = spy_run_traced(monkeypatch)
        result = run_experiment(spec)
        assert result.simulated > 0
        assert calls and all(calls)

    def test_explicit_step_engine_bypasses_traced(self, monkeypatch):
        from strategies import spy_run_traced

        calls = spy_run_traced(monkeypatch)
        run_experiment(small_spec(engine="step"))
        assert calls == []

    def test_plan_file_auto_engine_resolves_to_traced(self, tmp_path,
                                                      monkeypatch):
        from strategies import spy_run_traced

        plan = tmp_path / "plan.json"
        plan.write_text(small_spec().to_json())
        spec = load_plan(plan)
        assert spec.engine == "auto"   # round-trips through the file
        calls = spy_run_traced(monkeypatch)
        run_plan(plan)
        assert calls and all(calls)


class TestIncrementalPersistence:
    """A fault late in a run must not discard completed cells."""

    def test_crash_keeps_completed_cells(self, tmp_path, monkeypatch):
        import repro.experiments.backends as backends_module

        real = backends_module._run_cell
        completed = []

        def flaky(cell):
            if len(completed) == 2:
                raise RuntimeError("crash in cell 3 of 4")
            completed.append(cell.kernel_name)
            return real(cell)

        monkeypatch.setattr(backends_module, "_run_cell", flaky)
        with pytest.raises(RuntimeError, match="crash in cell 3"):
            run_experiment(small_spec(), store=tmp_path)
        # The two cells that finished were persisted as they arrived.
        assert len(ResultStore(tmp_path)) == 2
        # The rerun resumes: only the lost cells re-simulate.
        monkeypatch.setattr(backends_module, "_run_cell", real)
        resumed = run_experiment(small_spec(), store=tmp_path)
        assert resumed.simulated == 2 and resumed.cached == 2
        # And the final records match a clean run.
        assert resumed.records == run_experiment(small_spec()).records

    def test_failed_cell_emits_failed_event(self, tmp_path, monkeypatch):
        import repro.experiments.backends as backends_module

        def exploding(cell):
            raise RuntimeError("sim fault")

        monkeypatch.setattr(backends_module, "_run_cell", exploding)
        events = []
        with pytest.raises(RuntimeError, match="sim fault"):
            run_experiment(small_spec(kernels=("vec_sum",),
                                      machines=(XR_DEFAULT,)),
                           store=tmp_path, progress=events.append)
        assert [e["source"] for e in events] == ["failed"]
        assert "sim fault" in events[0]["error"]

    def test_legacy_backend_without_on_result_still_persists(
            self, tmp_path):
        from repro.experiments.backends import _run_cell

        class LegacyBackend:
            name = "legacy"

            def run_cells(self, cells):  # no on_result parameter
                return [_run_cell(cell) for cell in cells]

        result = run_experiment(small_spec(), backend=LegacyBackend(),
                                store=tmp_path)
        assert result.simulated == 4
        assert len(ResultStore(tmp_path)) == 4
        rerun = run_experiment(small_spec(), store=tmp_path)
        assert rerun.simulated == 0 and rerun.cached == 4


class TestProgressEvents:
    """The per-cell event contract the service streams as NDJSON."""

    def test_every_planned_cell_gets_one_event(self, tmp_path):
        spec = small_spec(repeats=2)  # 8 planned cells, 4 unique
        events = []
        run_experiment(spec, store=tmp_path, progress=events.append)
        sources = [e["source"] for e in events]
        assert sources.count("simulated") == 4
        assert sources.count("deduplicated") == 4
        assert all(e["event"] == "cell" and e["key"] for e in events)
        rerun_events = []
        run_experiment(spec, store=tmp_path,
                       progress=rerun_events.append)
        assert [e["source"] for e in rerun_events] == ["cached"] * 8

    def test_events_carry_identity_columns(self):
        spec = small_spec(kernels=("vec_sum",), machines=(XR_DEFAULT,),
                          sweep=(SweepAxis("branch_penalty", (0, 2)),))
        events = []
        run_experiment(spec, progress=events.append)
        assert {e["axes"]["branch_penalty"] for e in events} == {0, 2}
        assert all(e["kernel"] == "vec_sum"
                   and e["machine"] == "XRdefault"
                   and e["repeat"] == 0 for e in events)

    def test_batch_backend_streams_events_too(self, tmp_path):
        spec = small_spec(kernels=("vec_sum",), machines=(M_ZOLC_LITE,),
                          sweep=(SweepAxis("branch_penalty",
                                           (0, 1, 2, 3)),))
        events = []
        result = run_experiment(spec, backend="batch", store=tmp_path,
                                progress=events.append)
        assert result.simulated == 4
        assert [e["source"] for e in events] == ["simulated"] * 4


class TestRunPlan:
    def test_plan_file_run_and_rerun(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(small_spec().to_json())
        store = tmp_path / "results"
        first = run_plan(plan, store=store)
        second = run_plan(plan, store=store)
        assert first.simulated == 4
        assert second.simulated == 0  # acceptance: zero re-simulated cells
        assert first.records == second.records


class TestFigure2Equivalence:
    """Acceptance: the redesigned figure2 path reproduces the old cells."""

    def test_figure2_matches_direct_runs(self, fig2_kernels):
        from repro.eval.figures import figure2
        from repro.eval.machines import FIGURE2_MACHINES

        data = figure2()
        reg = registry()
        direct = {(k.name, m.name): run_kernel(reg.get(k.name), m).cycles
                  for k in fig2_kernels for m in FIGURE2_MACHINES}
        assert len(data.rows) == 12
        for row in data.rows:
            assert row.cycles_default == direct[(row.benchmark, "XRdefault")]
            assert row.cycles_hrdwil == direct[(row.benchmark, "XRhrdwil")]
            assert row.cycles_zolc == direct[(row.benchmark, "ZOLClite")]

    def test_figure2_plan_file_matches_figure2(self, tmp_path):
        from repro.eval.figures import figure2, figure2_from_result

        data = figure2()
        result = run_plan("examples/figure2_plan.json",
                          store=tmp_path / "results")
        from_plan = figure2_from_result(result)
        assert from_plan.rows == data.rows
        rerun = run_plan("examples/figure2_plan.json",
                         store=tmp_path / "results")
        assert rerun.simulated == 0


class TestCellProtocol:
    def test_cell_is_picklable(self):
        import pickle

        cell = Cell("vec_sum", MachineSpec("c", "zolc", CUSTOM_ZOLC),
                    PipelineConfig(), 1000)
        assert pickle.loads(pickle.dumps(cell)) == cell
