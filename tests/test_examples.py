"""Smoke tests: every example script runs to completion and verifies."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys=capsys)
        assert "ZOLClite (zero-overhead loop controller)" in out
        assert "result = 383" in out
        assert "% saved" in out

    def test_custom_kernel(self, capsys):
        out = _run("custom_kernel.py", capsys=capsys)
        assert "verified against the Python golden model" in out

    def test_loop_explorer_default(self, capsys):
        out = _run("loop_explorer.py", capsys=capsys)
        assert "loop nesting forest" in out
        assert "transform plans" in out

    def test_loop_explorer_other_kernel(self, capsys):
        out = _run("loop_explorer.py", argv=["conv2d"], capsys=capsys)
        assert "conv2d" in out
        assert "depth 4" in out

    @pytest.mark.slow
    def test_motion_estimation(self, capsys):
        out = _run("motion_estimation.py", capsys=capsys)
        assert "me_fss" in out and "me_tss" in out and "me_fss_early" in out
        assert "verified identical on all machines" in out
