"""`repro serve`: job manager semantics and the HTTP front end.

The JobManager tests pin the lifecycle contracts in isolation
(single-flight coalescing, event buffering, failure isolation); the
HTTP tests run a real server on an ephemeral port and drive it through
the same stdlib client `repro submit` uses.
"""

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.eval.machines import M_ZOLC_LITE, XR_DEFAULT
from repro.experiments import ExperimentSpec, RunConfig
from repro.service import (
    JobManager,
    ServiceClient,
    ServiceError,
    plan_fingerprint,
    start_in_thread,
)


def tiny_spec(**overrides) -> ExperimentSpec:
    defaults = dict(name="tiny", kernels=("vec_sum",),
                    machines=(XR_DEFAULT,))
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestPlanFingerprint:
    def test_host_side_choices_do_not_change_identity(self):
        base = plan_fingerprint(tiny_spec())
        assert plan_fingerprint(tiny_spec(engine="step")) == base
        assert plan_fingerprint(tiny_spec(backend="process",
                                          jobs=4)) == base

    def test_measured_content_does(self):
        base = plan_fingerprint(tiny_spec())
        assert plan_fingerprint(tiny_spec(machines=(M_ZOLC_LITE,))) != base
        assert plan_fingerprint(tiny_spec(max_steps=500)) != base
        assert plan_fingerprint(tiny_spec(repeats=2)) != base


class TestJobManager:
    def test_submit_runs_to_done_with_events(self, tmp_path):
        with JobManager(store=tmp_path, backend="serial") as manager:
            job, coalesced = manager.submit(tiny_spec())
            assert not coalesced
            manager.wait(job.id, timeout=60)
            assert job.state == "done"
            assert job.result.simulated == 1
            cell_events = [e for e in job.events if e["event"] == "cell"]
            assert [e["source"] for e in cell_events] == ["simulated"]
            assert job.events[-1]["event"] == "done"
            assert job.summary()["records"] == 1

    def test_second_submission_serves_from_store(self, tmp_path):
        with JobManager(store=tmp_path, backend="serial") as manager:
            first, _ = manager.submit(tiny_spec())
            manager.wait(first.id, timeout=60)
            second, coalesced = manager.submit(tiny_spec())
            assert not coalesced  # completed jobs never coalesce
            assert second.id != first.id
            manager.wait(second.id, timeout=60)
            assert second.result.simulated == 0
            assert second.result.cached == 1

    def test_inflight_twins_coalesce_single_flight(self, tmp_path):
        gate = threading.Event()
        started = threading.Event()
        runs = []

        def gated_runner(spec, **kwargs):
            runs.append(spec.name)
            started.set()
            assert gate.wait(timeout=60)
            from repro.experiments import run_experiment
            return run_experiment(spec, RunConfig(backend="serial"),
                                  store=kwargs.get("store"),
                                  progress=kwargs.get("progress"))

        with JobManager(store=tmp_path, runner=gated_runner) as manager:
            job, coalesced = manager.submit(tiny_spec())
            assert started.wait(timeout=60)
            twin, twin_coalesced = manager.submit(tiny_spec())
            other, other_coalesced = manager.submit(
                tiny_spec(name="other", machines=(M_ZOLC_LITE,)))
            gate.set()
            manager.wait(job.id, timeout=60)
            manager.wait(other.id, timeout=60)
        assert not coalesced and twin_coalesced and not other_coalesced
        assert twin.id == job.id  # the duplicate shares the running job
        assert other.id != job.id  # a different plan does not
        assert runs.count("tiny") == 1  # single-flight: one simulation

    def test_failed_job_is_isolated_and_reported(self, tmp_path):
        def exploding_runner(spec, **kwargs):
            raise RuntimeError("backend down")

        with JobManager(store=tmp_path, runner=exploding_runner) as manager:
            job, _ = manager.submit(tiny_spec())
            manager.wait(job.id, timeout=60)
            assert job.state == "failed"
            assert "backend down" in job.error
            assert job.events[-1]["event"] == "failed"
            # The manager survives: the next job runs normally.
            events, finished = manager.events_since(job.id, 0, timeout=1)
            assert finished and events[-1]["event"] == "failed"

    def test_events_since_paginates(self, tmp_path):
        with JobManager(store=tmp_path, backend="serial") as manager:
            job, _ = manager.submit(tiny_spec(repeats=3))
            manager.wait(job.id, timeout=60)
            first, finished_early = manager.events_since(job.id, 0,
                                                         timeout=1)
            assert finished_early
            again, finished = manager.events_since(job.id, len(first),
                                                   timeout=0.1)
            assert again == [] and finished
            sources = [e["source"] for e in first if e["event"] == "cell"]
            assert sources.count("simulated") == 1
            assert sources.count("deduplicated") == 2

    def test_unknown_job_raises(self, tmp_path):
        with JobManager(store=tmp_path, backend="serial") as manager:
            with pytest.raises(KeyError, match="unknown job"):
                manager.get("nope")

    def test_closed_manager_refuses_submissions(self, tmp_path):
        manager = JobManager(store=tmp_path, backend="serial")
        manager.close()
        with pytest.raises(RuntimeError, match="closed"):
            manager.submit(tiny_spec())


@pytest.fixture()
def service(tmp_path):
    manager = JobManager(store=tmp_path / "results", backend="serial")
    handle = start_in_thread(manager)
    try:
        yield ServiceClient(handle.url)
    finally:
        handle.stop()
        manager.close()


class TestHttpService:
    def test_healthz(self, service):
        health = service.health()
        assert health["ok"] and health["jobs"] == 0

    def test_submit_stream_result_roundtrip(self, service):
        payload = service.run(tiny_spec().to_json(), "json")
        assert payload["state"] == "done"
        assert payload["events"] == {"simulated": 1}
        records = payload["result"]["records"]
        assert records[0]["kernel"] == "vec_sum" and records[0]["verified"]

        again = service.run(tiny_spec().to_json(), "json")
        assert again["state"] == "done"
        assert again["events"] == {"cached": 1}  # zero simulations
        assert again["result"]["records"] == records

    def test_toml_plan_body(self, service):
        plan = ('name = "toml-tiny"\nkernels = ["vec_sum"]\n'
                'machines = ["XRdefault"]\n')
        payload = service.run(plan, "toml")
        assert payload["state"] == "done"

    def test_event_stream_is_ndjson_with_terminal_event(self, service):
        submission = service.submit(tiny_spec().to_json(), "json")
        events = list(service.events(submission["job"]))
        assert [e["event"] for e in events].count("cell") == 1
        assert events[-1]["event"] == "done"
        assert events[-1]["simulated"] == 1
        cell = next(e for e in events if e["event"] == "cell")
        assert cell["kernel"] == "vec_sum" and cell["machine"] == "XRdefault"
        assert cell["key"]  # the store key rides along for observability

    def test_bad_plan_is_400(self, service):
        with pytest.raises(ServiceError, match="400"):
            service.submit("{not json", "json")

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError, match="404"):
            service.status("j9999-deadbeef")
        with pytest.raises(ServiceError, match="404"):
            list(service.events("j9999-deadbeef"))
        with pytest.raises(ServiceError, match="404"):
            service.result("j9999-deadbeef")

    def test_unknown_route_is_404(self, service):
        with pytest.raises(ServiceError, match="404"):
            service._json("GET", "/nope")

    def test_status_endpoint(self, service):
        submission = service.submit(tiny_spec().to_json(), "json")
        list(service.events(submission["job"]))  # drain to completion
        status = service.status(submission["job"])
        assert status["state"] == "done" and status["simulated"] == 1


class TestResultBeforeDone:
    def test_result_of_running_job_is_202(self, tmp_path):
        gate = threading.Event()
        started = threading.Event()

        def gated_runner(spec, **kwargs):
            started.set()
            assert gate.wait(timeout=60)
            from repro.experiments import run_experiment
            return run_experiment(spec, RunConfig(backend="serial"))

        manager = JobManager(store=tmp_path, runner=gated_runner)
        handle = start_in_thread(manager)
        client = ServiceClient(handle.url)
        try:
            submission = client.submit(tiny_spec().to_json(), "json")
            assert started.wait(timeout=60)
            pending = client._json("GET",
                                   f"/jobs/{submission['job']}/result")
            assert pending["state"] in ("pending", "running")
            gate.set()
            list(client.events(submission["job"]))  # wait via the stream
            done = client.result(submission["job"])
            assert done["records"]
        finally:
            gate.set()
            handle.stop()
            manager.close()

    def test_failed_job_result_is_500(self, tmp_path):
        def exploding_runner(spec, **kwargs):
            raise RuntimeError("no capacity")

        manager = JobManager(store=tmp_path, runner=exploding_runner)
        handle = start_in_thread(manager)
        client = ServiceClient(handle.url)
        try:
            submission = client.submit(tiny_spec().to_json(), "json")
            events = list(client.events(submission["job"]))
            assert events[-1]["event"] == "failed"
            with pytest.raises(ServiceError, match="500"):
                client.result(submission["job"])
        finally:
            handle.stop()
            manager.close()


class TestJobManagerRunConfig:
    def test_per_job_config_merges_over_manager_defaults(self, tmp_path):
        captured = {}

        def capturing_runner(spec, **kwargs):
            captured.update(kwargs)
            from repro.experiments import run_experiment
            return run_experiment(spec, RunConfig(),
                                  store=kwargs.get("store"))

        with JobManager(store=tmp_path, jobs=3,
                        runner=capturing_runner) as manager:
            job, _ = manager.submit(tiny_spec(), RunConfig(engine="step"))
            manager.wait(job.id, timeout=60)
        config = captured["config"]
        assert config.engine == "step"  # the submit body's choice...
        assert config.jobs == 3  # ...over the manager's standing default

    def test_max_steps_override_changes_the_fingerprint(self, tmp_path):
        gate = threading.Event()
        started = threading.Event()

        def gated_runner(spec, **kwargs):
            started.set()
            assert gate.wait(timeout=60)
            from repro.experiments import run_experiment
            return run_experiment(spec, RunConfig(),
                                  store=kwargs.get("store"))

        with JobManager(store=tmp_path, runner=gated_runner) as manager:
            base, _ = manager.submit(tiny_spec())
            assert started.wait(timeout=60)
            twin, twin_coalesced = manager.submit(
                tiny_spec(), RunConfig(engine="fast"))
            deeper, deeper_coalesced = manager.submit(
                tiny_spec(), RunConfig(max_steps=500))
            gate.set()
            manager.wait(base.id, timeout=60)
            manager.wait(deeper.id, timeout=60)
        # Host-side overrides coalesce freely; a max_steps override
        # changes what the plan measures, so it never does.
        assert twin_coalesced and twin.id == base.id
        assert not deeper_coalesced and deeper.id != base.id
        assert deeper.spec.max_steps == 500


class TestV1Api:
    def test_unversioned_path_redirects_permanently(self, service):
        conn = HTTPConnection(service.host, service.port, timeout=10)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 308
            assert response.getheader("Location") == "/v1/healthz"
            assert json.loads(response.read())["redirect"] == "/v1/healthz"
        finally:
            conn.close()

    def test_legacy_unversioned_client_still_works(self, service):
        legacy = ServiceClient(f"{service.host}:{service.port}", api="")
        payload = legacy.run(tiny_spec().to_json(), "json")
        assert payload["state"] == "done"
        assert payload["result"]["records"]

    def test_submit_envelope_with_run_config(self, service):
        payload = service.run(tiny_spec().to_json(), "json",
                              run_config={"engine": "step"})
        assert payload["state"] == "done"
        assert payload["events"] == {"simulated": 1}

    def test_run_config_accepts_a_runconfig_object(self, service):
        submission = service.submit(tiny_spec().to_json(), "json",
                                    run_config=RunConfig(engine="step"))
        list(service.events(submission["job"]))
        assert service.status(submission["job"])["state"] == "done"

    def test_bad_run_config_key_is_400(self, service):
        with pytest.raises(ServiceError, match="unknown run_config key"):
            service.submit(tiny_spec().to_json(), "json",
                           run_config={"store": "elsewhere"})

    def test_unknown_envelope_key_is_400(self, service):
        body = json.dumps({"plan": json.loads(tiny_spec().to_json()),
                           "extra": 1}).encode()
        with pytest.raises(ServiceError, match="400"):
            service._json("POST", "/v1/jobs", body, "application/json")

    def test_run_config_requires_a_json_plan(self, service):
        with pytest.raises(ValueError, match="JSON plan body"):
            service.submit('name = "x"', "toml", run_config={"jobs": 2})


class TestServiceClientUrl:
    def test_bare_host_port_accepted(self):
        client = ServiceClient("127.0.0.1:8123")
        assert (client.host, client.port) == ("127.0.0.1", 8123)

    def test_https_rejected(self):
        with pytest.raises(ValueError, match="plain http only"):
            ServiceClient("https://example.com")

    def test_unknown_plan_format_rejected(self):
        with pytest.raises(ValueError, match="unknown plan format"):
            ServiceClient("127.0.0.1:1").submit("{}", "yaml")
