"""Unit tests for the pipeline timing model."""

import pytest

from repro.cpu.datapath import ExecOutcome
from repro.cpu.pipeline import PipelineConfig, TimingModel
from repro.isa.instructions import Instruction


def seq(pc=0):
    return ExecOutcome(pc + 4, False, None)


def taken(target=0):
    return ExecOutcome(target, True, None)


def load(dest, pc=0):
    return ExecOutcome(pc + 4, False, dest)


class TestConfig:
    def test_defaults(self):
        config = PipelineConfig()
        assert config.branch_penalty == 1
        assert config.hwloop_penalty == 0
        assert config.load_use_stall == 1
        assert config.zolc_switch_cycles == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PipelineConfig(branch_penalty=-1)
        with pytest.raises(ValueError):
            PipelineConfig(zolc_switch_cycles=-2)


class TestBaseCycles:
    def test_alu_one_cycle(self):
        model = TimingModel(PipelineConfig())
        inst = Instruction("add", rd=1, rs=2, rt=3)
        assert model.cycles_for(inst, seq()) == 1

    def test_untaken_branch_one_cycle(self):
        model = TimingModel(PipelineConfig())
        inst = Instruction("bne", rs=1, rt=0, imm=-1)
        assert model.cycles_for(inst, seq()) == 1


class TestBranchPenalty:
    def test_taken_branch(self):
        model = TimingModel(PipelineConfig(branch_penalty=2))
        inst = Instruction("bne", rs=1, rt=0, imm=-1)
        assert model.cycles_for(inst, taken()) == 3
        assert model.flush_cycles == 2

    def test_jump_register_penalty(self):
        model = TimingModel(PipelineConfig(jump_register_penalty=3))
        inst = Instruction("jr", rs=31)
        assert model.cycles_for(inst, taken()) == 4

    def test_dbne_uses_hwloop_penalty(self):
        model = TimingModel(PipelineConfig(branch_penalty=2, hwloop_penalty=0))
        inst = Instruction("dbne", rs=8, imm=-1)
        assert model.cycles_for(inst, taken()) == 1

    def test_dbne_untaken_no_penalty(self):
        model = TimingModel(PipelineConfig(hwloop_penalty=5))
        inst = Instruction("dbne", rs=8, imm=-1)
        assert model.cycles_for(inst, seq()) == 1


class TestLoadUseInterlock:
    def test_stall_on_immediate_use(self):
        model = TimingModel(PipelineConfig())
        lw = Instruction("lw", rt=8, rs=29, imm=0)
        use = Instruction("add", rd=9, rs=8, rt=0)
        assert model.cycles_for(lw, load(8)) == 1
        assert model.cycles_for(use, seq(4)) == 2
        assert model.stall_cycles == 1

    def test_no_stall_with_gap(self):
        model = TimingModel(PipelineConfig())
        lw = Instruction("lw", rt=8, rs=29, imm=0)
        other = Instruction("add", rd=10, rs=11, rt=12)
        use = Instruction("add", rd=9, rs=8, rt=0)
        model.cycles_for(lw, load(8))
        assert model.cycles_for(other, seq(4)) == 1
        assert model.cycles_for(use, seq(8)) == 1

    def test_no_stall_on_unrelated_register(self):
        model = TimingModel(PipelineConfig())
        lw = Instruction("lw", rt=8, rs=29, imm=0)
        use = Instruction("add", rd=9, rs=10, rt=11)
        model.cycles_for(lw, load(8))
        assert model.cycles_for(use, seq(4)) == 1

    def test_store_address_use_stalls(self):
        model = TimingModel(PipelineConfig())
        lw = Instruction("lw", rt=8, rs=29, imm=0)
        sw = Instruction("sw", rt=8, rs=29, imm=4)  # stores loaded value
        model.cycles_for(lw, load(8))
        assert model.cycles_for(sw, seq(4)) == 2

    def test_zolc_switch_clears_interlock(self):
        model = TimingModel(PipelineConfig())
        lw = Instruction("lw", rt=8, rs=29, imm=0)
        use = Instruction("add", rd=9, rs=8, rt=0)
        model.cycles_for(lw, load(8))
        assert model.zolc_switch() == 0
        assert model.cycles_for(use, seq(4)) == 1


class TestMul:
    def test_extra_mul_cycles(self):
        model = TimingModel(PipelineConfig(mul_extra_cycles=2))
        inst = Instruction("mul", rd=1, rs=2, rt=3)
        assert model.cycles_for(inst, seq()) == 3


class TestZolcSwitch:
    def test_default_zero(self):
        model = TimingModel(PipelineConfig())
        assert model.zolc_switch() == 0

    def test_configurable_cost(self):
        model = TimingModel(PipelineConfig(zolc_switch_cycles=2))
        assert model.zolc_switch() == 2


class TestReset:
    def test_reset_clears_counters(self):
        model = TimingModel(PipelineConfig())
        inst = Instruction("bne", rs=1, rt=0, imm=-1)
        model.cycles_for(inst, taken())
        model.reset()
        assert model.flush_cycles == 0
        assert model.stall_cycles == 0
