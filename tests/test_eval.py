"""Unit tests for the evaluation harness: metrics, runner, figures."""

import pytest

from repro.eval.figures import figure2_from_suite, render_figure2
from repro.eval.machines import FIGURE2_MACHINES, M_ZOLC_LITE, XR_DEFAULT, XR_HRDWIL
from repro.eval.metrics import (
    improvement_percent,
    relative_cycles,
    summarise,
)
from repro.eval.runner import RunResult, SuiteResult, run_kernel, run_suite
from repro.workloads.suite import registry


class TestMetrics:
    def test_relative_cycles(self):
        assert relative_cycles(50, 100) == pytest.approx(0.5)

    def test_improvement_percent(self):
        assert improvement_percent(75, 100) == pytest.approx(25.0)

    def test_no_improvement(self):
        assert improvement_percent(100, 100) == pytest.approx(0.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_cycles(10, 0)

    def test_summary(self):
        summary = summarise([10.0, 20.0, 30.0])
        assert summary.maximum == 30.0
        assert summary.minimum == 10.0
        assert summary.average == pytest.approx(20.0)
        assert "max 30.0" in str(summary)

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise([])


class TestRunner:
    def test_run_kernel_verifies(self):
        kernel = registry().get("vec_sum")
        result = run_kernel(kernel, XR_DEFAULT)
        assert result.verified
        assert result.cycles > result.instructions  # penalties exist
        assert result.machine_name == "XRdefault"
        assert result.cpi > 1.0

    def test_run_suite_collects_all(self):
        kernels = [registry().get("vec_sum"), registry().get("quantize")]
        suite = run_suite(kernels, [XR_DEFAULT, M_ZOLC_LITE])
        assert len(suite.results) == 4
        assert suite.kernels() == ["vec_sum", "quantize"]
        assert suite.get("vec_sum", "ZOLClite").cycles \
            < suite.get("vec_sum", "XRdefault").cycles

    def test_suite_machines_mirror_kernels(self):
        kernels = [registry().get("vec_sum"), registry().get("quantize")]
        suite = run_suite(kernels, [XR_DEFAULT, M_ZOLC_LITE])
        assert suite.machines() == ["XRdefault", "ZOLClite"]

    def test_suite_records_are_tidy(self):
        suite = run_suite([registry().get("vec_sum")],
                          [XR_DEFAULT, M_ZOLC_LITE])
        records = suite.records()
        assert len(records) == 2
        first = records[0]
        assert first["kernel"] == "vec_sum"
        assert first["machine"] == "XRdefault"
        for column in ("cycles", "instructions", "cpi", "verified",
                       "stall_cycles", "flush_cycles"):
            assert column in first

    def test_suite_to_json_round_trips(self):
        import json
        suite = run_suite([registry().get("vec_sum")], [XR_DEFAULT])
        payload = json.loads(suite.to_json())
        assert payload["records"][0]["cycles"] \
            == suite.get("vec_sum", "XRdefault").cycles

    def test_records_tolerate_missing_stats(self):
        suite = SuiteResult()
        suite.add(RunResult(kernel_name="k", machine_name="m", cycles=10,
                            instructions=10, stats=None, verified=True,
                            transformed_loops=0))
        record = suite.records()[0]
        assert record["cycles"] == 10
        assert "stall_cycles" not in record


class TestFigure2Assembly:
    def _fake_suite(self):
        suite = SuiteResult()
        for name, cycles in (("a", (100, 90, 70)), ("b", (200, 170, 120))):
            for machine, value in zip(("XRdefault", "XRhrdwil", "ZOLClite"),
                                      cycles):
                suite.add(RunResult(
                    kernel_name=name, machine_name=machine, cycles=value,
                    instructions=value, stats=None, verified=True,
                    transformed_loops=1))
        return suite

    def test_rows_and_summaries(self):
        data = figure2_from_suite(self._fake_suite())
        assert len(data.rows) == 2
        row_a = data.rows[0]
        assert row_a.improvement_hrdwil == pytest.approx(10.0)
        assert row_a.improvement_zolc == pytest.approx(30.0)
        assert data.zolc_summary.maximum == pytest.approx(40.0)
        assert data.hrdwil_summary.average == pytest.approx(12.5)

    def test_relative_values(self):
        data = figure2_from_suite(self._fake_suite())
        assert data.rows[1].rel_zolc == pytest.approx(0.6)

    def test_render_contains_all_rows(self):
        text = render_figure2(figure2_from_suite(self._fake_suite()))
        assert "Figure 2" in text
        assert " a " in text or "a  " in text
        assert "paper: max 48.2" in text
        assert "#" in text  # bars


class TestFigure2MachinesConstant:
    def test_three_machines(self):
        names = [m.name for m in FIGURE2_MACHINES]
        assert names == ["XRdefault", "XRhrdwil", "ZOLClite"]

    def test_prepared_kernel_counts_loops(self):
        kernel = registry().get("matmul")
        prepared = XR_HRDWIL.prepare(kernel.source)
        assert prepared.transformed_loops == 1  # innermost k-loop only
        prepared_default = XR_DEFAULT.prepare(kernel.source)
        assert prepared_default.transformed_loops == 0
