"""Unit + integration tests for the ZOLC code transform."""

from repro.asm import assemble
from repro.core.config import UZOLC, ZOLC_FULL, ZOLC_LITE
from repro.cpu.simulator import run_program
from repro.transform.zolc_rewrite import rewrite_for_zolc

SINGLE = """
        .data
out:    .word 0
        .text
main:   li   t0, 10
        li   s0, 0
loop:   add  s0, s0, t0
        addi t0, t0, -1
        bne  t0, zero, loop
        la   t1, out
        sw   s0, 0(t1)
        halt
"""
SINGLE_EXPECTED = sum(range(1, 11))


def run_zolc(source, config):
    result = rewrite_for_zolc(source, config)
    sim = result.make_simulator()
    sim.run()
    return result, sim


class TestSingleLoop:
    def test_result_matches_baseline(self):
        result, sim = run_zolc(SINGLE, ZOLC_LITE)
        assert sim.state.regs["s0"] == SINGLE_EXPECTED
        out = sim.memory.load_word(sim.program.symbols["out"])
        assert out == SINGLE_EXPECTED

    def test_overhead_instructions_removed(self):
        result, _ = run_zolc(SINGLE, ZOLC_LITE)
        # init + update + branch deleted; init sequence added.
        assert result.removed_instruction_count == 3
        mnemonics = [i.mnemonic for i in result.program.instructions]
        assert "bne" not in mnemonics

    def test_cycles_reduced(self):
        result, sim = run_zolc(SINGLE, ZOLC_LITE)
        baseline_sim = run_program(assemble(SINGLE))
        assert sim.stats.cycles < baseline_sim.stats.cycles

    def test_index_register_visible_in_body(self):
        # s0 accumulates t0 values 10..1, proving the ZOLC keeps the
        # architectural index register up to date every iteration.
        _, sim = run_zolc(SINGLE, ZOLC_LITE)
        assert sim.state.regs["s0"] == SINGLE_EXPECTED

    def test_task_switch_statistics(self):
        _, sim = run_zolc(SINGLE, ZOLC_LITE)
        assert sim.stats.zolc_task_switches == 10  # 9 loop-backs + expiry

    def test_init_instruction_count_recorded(self):
        result, _ = run_zolc(SINGLE, ZOLC_LITE)
        assert result.init_instruction_count > 0
        assert result.transformed_loop_count == 1

    def test_specs_describe_the_loop(self):
        result, _ = run_zolc(SINGLE, ZOLC_LITE)
        assert len(result.specs) == 1
        spec = result.specs[0].loops[0]
        assert spec.step == -1
        assert spec.trips.value == 10


class TestNest(object):
    def test_nested_result_correct(self, nested_sum_source,
                                   nested_sum_expected):
        result, sim = run_zolc(nested_sum_source, ZOLC_LITE)
        assert sim.state.regs["s0"] == nested_sum_expected
        assert result.transformed_loop_count == 2

    def test_nested_faster_than_uzolc(self, nested_sum_source):
        _, lite_sim = run_zolc(nested_sum_source, ZOLC_LITE)
        _, uzolc_sim = run_zolc(nested_sum_source, UZOLC)
        assert lite_sim.stats.cycles < uzolc_sim.stats.cycles

    def test_rejected_loops_keep_their_code(self, nested_sum_source):
        result, sim = run_zolc(nested_sum_source, UZOLC)
        # the outer loop stays in software: its bne survives
        mnemonics = [i.mnemonic for i in result.program.instructions]
        assert "bne" in mnemonics


class TestPerfectNestCascade:
    SOURCE = """
        .data
out:    .word 0
        .text
main:   li   t0, 5
outer:  li   t1, 7
inner:  addi s0, s0, 1
        addi t1, t1, -1
        bne  t1, zero, inner
        addi t0, t0, -1
        bne  t0, zero, outer
        la   t2, out
        sw   s0, 0(t2)
        halt
"""

    def test_cascade_counts_all_iterations(self):
        result, sim = run_zolc(self.SOURCE, ZOLC_LITE)
        assert sim.state.regs["s0"] == 35

    def test_outer_has_no_trigger(self):
        result, _ = run_zolc(self.SOURCE, ZOLC_LITE)
        spec = result.specs[0]
        outer_spec = next(s for s in spec.loops if s.parent is None)
        inner_spec = next(s for s in spec.loops if s.parent is not None)
        assert outer_spec.trigger_label is None
        assert inner_spec.cascade

    def test_deep_nest_all_levels(self):
        from repro.workloads.kernels.synthetic import nest_kernel
        kernel = nest_kernel(depth=5, trips=3, body_ops=2)
        result, sim = run_zolc(kernel.source, ZOLC_LITE)
        assert result.transformed_loop_count == 5
        kernel.check(sim)


class TestMultiExit:
    SOURCE = """
        .data
out:    .word 0
        .text
main:   li   t0, 20
        li   s1, 12
loop:   addi s0, s0, 1
        beq  s0, s1, escape
        addi t0, t0, -1
        bne  t0, zero, loop
escape: la   t2, out
        sw   s0, 0(t2)
        halt
"""

    def test_lite_leaves_loop_alone(self):
        result, sim = run_zolc(self.SOURCE, ZOLC_LITE)
        assert result.transformed_loop_count == 0
        assert sim.state.regs["s0"] == 12

    def test_full_transforms_and_exits_correctly(self):
        result, sim = run_zolc(self.SOURCE, ZOLC_FULL)
        assert result.transformed_loop_count == 1
        assert len(result.specs[0].exits) == 1
        assert sim.state.regs["s0"] == 12

    def test_full_without_break_runs_out(self):
        # s1 unreachable -> loop runs its full 20 trips
        source = self.SOURCE.replace("li   s1, 12", "li   s1, 50")
        result, sim = run_zolc(source, ZOLC_FULL)
        assert sim.state.regs["s0"] == 20


class TestReexecution:
    SOURCE = """
        .data
out:    .word 0
        .text
main:   li   s2, 3
again:  li   t0, 8
loop:   addi s0, s0, 1
        addi t0, t0, -1
        bne  t0, zero, loop
        addi s2, s2, -1
        bne  s2, zero, again
        la   t2, out
        sw   s0, 0(t2)
        halt
"""

    def test_nested_reentry(self):
        # outer loop 'again' also matches; both transform under lite
        result, sim = run_zolc(self.SOURCE, ZOLC_LITE)
        assert sim.state.regs["s0"] == 24

    def test_uzolc_rearms_each_entry(self):
        result, sim = run_zolc(self.SOURCE, UZOLC)
        assert sim.state.regs["s0"] == 24
        controller = sim.zolc
        assert controller.arm_count == 3


class TestProgramHygiene:
    def test_data_segment_preserved(self):
        result, _ = run_zolc(SINGLE, ZOLC_LITE)
        assert result.program.symbols["out"] >= result.program.data_base

    def test_no_transform_for_straight_line(self):
        source = "main: li t0, 1\nhalt\n"
        result = rewrite_for_zolc(source, ZOLC_LITE)
        assert result.transformed_loop_count == 0
        sim = result.make_simulator()
        sim.run()
        assert sim.state.regs["t0"] == 1

    def test_marker_labels_present(self):
        result, _ = run_zolc(SINGLE, ZOLC_LITE)
        labels = [s for s in result.program.symbols if s.startswith("__zolc")]
        assert any("body" in s for s in labels)
        assert any("trig" in s for s in labels)
