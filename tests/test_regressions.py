"""Replay every pinned soak regression, forever.

``repro soak`` pins each shrunk differential failure under
``tests/regressions/`` as a self-contained ``.s`` + manifest pair;
this suite replays every checked-in pair through all of its manifest's
engines and asserts bit-identical observations — so a fixed bug stays
fixed without the generator, the corpus or any seeds in the loop.
"""

import json
from pathlib import Path

import pytest

from repro.cpu.pipeline import PipelineConfig
from repro.eval.machines import MachineSpec
from repro.synth import generate_kernel
from repro.synth.observe import observe
from repro.synth.soak import write_regression

REGRESSIONS_DIR = Path(__file__).parent / "regressions"

MANIFESTS = sorted(REGRESSIONS_DIR.glob("*.json"))


def replay(manifest_path: Path) -> None:
    """Assert every engine in the manifest observes identical state."""
    manifest = json.loads(manifest_path.read_text())
    source = (manifest_path.parent / manifest["source_file"]).read_text()
    machine = MachineSpec.from_dict(manifest["machine"])
    pipeline = PipelineConfig(**manifest["pipeline"])
    prepared = machine.prepare(source)
    observations = {}
    for engine in manifest["engines"]:
        sim = prepared.make_simulator(pipeline=pipeline)
        sim.run(max_steps=manifest["max_steps"], engine=engine)
        observations[engine] = observe(sim)
    reference_engine = manifest["engines"][0]
    reference = observations[reference_engine]
    for engine, observation in observations.items():
        assert observation == reference, (
            f"{manifest['kernel']}: {engine} diverged from "
            f"{reference_engine} (regressed: {manifest_path.name})")


@pytest.mark.parametrize("manifest_path", MANIFESTS,
                         ids=lambda path: path.stem)
def test_pinned_regression_replays_bit_identical(manifest_path):
    replay(manifest_path)


def test_replay_harness_accepts_a_fresh_pin(tmp_path):
    """The pin→replay loop round-trips even with no checked-in pairs."""
    kernel = generate_kernel("rearm_storm", 0, 0)
    manifest_path = write_regression(kernel, "traced", tmp_path)
    replay(manifest_path)


def test_every_source_file_is_claimed_by_a_manifest():
    claimed = {json.loads(path.read_text())["source_file"]
               for path in MANIFESTS}
    on_disk = {path.name for path in REGRESSIONS_DIR.glob("*.s")}
    assert on_disk <= claimed  # orphans mean a broken pin
