"""Generated code is byte-identical across fresh interpreter runs.

The emitter's output feeds content-addressed caches and the
generated-code auditor, so it must not depend on set/dict iteration
order.  Two subprocesses with different ``PYTHONHASHSEED`` values
force codegen over the same kernel and hash every recorded source;
the digests must match exactly.
"""

import os
import subprocess
import sys

import repro

_DRIVER = """
import hashlib

from repro.cpu.analysis import audit_codegen, chain_candidates
from repro.cpu.analysis.verify import VerifyContext
from repro.cpu.engine.emit import codegen_records
from repro.cpu.ir import build_ir
from repro.eval.check import static_plan
from repro.eval.machines import machine_registry
from repro.workloads.suite import registry

machine = machine_registry().get("ZOLCfull")
prepared = machine.prepare(registry().get("vec_sum").source)
program = prepared.program
ir = build_ir(program)
plan = static_plan(prepared)
ctx = VerifyContext(ir=ir, base=program.text_base,
                    entry_pc=program.entry_point(), plan=plan)
audit_codegen(prepared.make_simulator(),
              watched=plan.watched_next_pcs(),
              chains=chain_candidates(ctx))
records = codegen_records(program)
blob = "\\n===\\n".join(
    f"{key}\\n{record.source}\\n{record.line_member}"
    for key, record in sorted(records.items(),
                              key=lambda kv: repr(kv[0])))
print(hashlib.sha256(blob.encode()).hexdigest())
"""


def _digest(hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    proc = subprocess.run([sys.executable, "-c", _DRIVER], env=env,
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    digest = proc.stdout.strip()
    assert len(digest) == 64
    return digest


def test_emitted_source_is_deterministic():
    assert _digest("1") == _digest("31337")
