"""The differential soak loop: budget, discovery, shrinking, pinning.

The clean-path tests run the real five-engine comparison over the real
corpus (every kernel must agree bit-identically).  The failure-path
tests inject a deliberately broken ``fast`` tier — the corruption is
unconditional, so the shrinker's greedy ladder walk must reach the
knob floor — and assert the full discover → shrink → pin → nonzero-exit
contract end to end, including through the CLI.
"""

import json
from pathlib import Path

import pytest

import repro.cpu.simulator as simulator_module
from repro.cli import main
from repro.synth import FAMILY_NAMES, generate_kernel
from repro.synth.soak import (
    SOAK_ENGINES,
    find_disagreement,
    run_observation,
    run_soak,
    write_regression,
)

#: The knob floor the shrink ladder converges to when *every* kernel
#: fails (see ``shrunk_knob_candidates``): all ranges collapsed.
FLOOR = {"min_nests": 1, "max_nests": 1, "min_depth": 1, "max_depth": 1,
         "min_body_ops": 1, "max_body_ops": 1, "min_trips": 1,
         "max_trips": 1, "body_shapes": [0], "early_exit_den": 0}


def _break_fast_engine(monkeypatch):
    """Make the ``fast`` tier miscount cycles (every kernel, always)."""
    real = simulator_module.run_fast

    def broken(sim, max_steps, predecoded):
        real(sim, max_steps, predecoded)
        sim.stats.cycles += 1

    monkeypatch.setattr(simulator_module, "run_fast", broken)


class TestCleanSoak:
    def test_min_kernels_floor_beats_a_zero_budget(self, tmp_path):
        report = run_soak(budget_seconds=0.0, min_kernels=6,
                          regressions_dir=None)
        assert report.ok
        assert report.kernels_run >= 6
        assert set(report.per_family) <= set(FAMILY_NAMES)
        assert not list(tmp_path.iterdir())  # nothing pinned anywhere

    def test_max_kernels_stops_after_one_round(self):
        report = run_soak(budget_seconds=60.0, max_kernels=1,
                          regressions_dir=None)
        # Rounds are whole family sweeps; the cap is checked between
        # rounds, so one round of every family runs.
        assert report.kernels_run == len(FAMILY_NAMES)
        assert report.ok and report.elapsed_seconds < 60.0

    def test_report_serializes_for_ci_artifacts(self):
        report = run_soak(budget_seconds=0.0, min_kernels=1,
                          families=("baseline",), regressions_dir=None)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["mismatches"] == 0
        assert payload["seed"] == 0
        assert payload["families"] == ["baseline"]
        assert payload["kernels_run"] == report.kernels_run

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one family"):
            run_soak(budget_seconds=0.0, families=())
        with pytest.raises(ValueError, match="reference engine"):
            run_soak(budget_seconds=0.0, engines=("step",))

    def test_fault_outcomes_are_comparable(self):
        kernel = generate_kernel("baseline", 0, 0)
        outcome = run_observation(kernel, "step", max_steps=1)
        assert outcome[0] == "fault" and outcome[1] == "WatchdogError"


class TestBrokenTier:
    def test_soak_discovers_shrinks_and_pins(self, monkeypatch, tmp_path):
        _break_fast_engine(monkeypatch)
        report = run_soak(budget_seconds=60.0, max_kernels=1,
                          families=("branchy",), regressions_dir=tmp_path)
        assert not report.ok
        failure = report.failures[0]
        assert failure.engine == "fast"
        assert failure.kernel_name == "synth:branchy:0:0"
        # Unconditional corruption: the greedy ladder walk must reach
        # the knob floor — the minimal kernel the space can express.
        floor_view = {key: failure.shrunk_knobs[key] for key in FLOOR}
        assert floor_view == FLOOR
        # ...and the reproducer is pinned as a self-contained pair.
        manifest_path = Path(failure.regression_path)
        assert manifest_path.parent == tmp_path
        manifest = json.loads(manifest_path.read_text())
        source = (tmp_path / manifest["source_file"]).read_text()
        assert manifest["mismatching_engine"] == "fast"
        assert manifest["provenance"]["knobs"] == failure.shrunk_knobs
        assert source  # non-empty program text rode along

    def test_disagreement_names_the_engine_and_outcomes(self, monkeypatch):
        _break_fast_engine(monkeypatch)
        kernel = generate_kernel("baseline", 0, 0)
        engine, reference, outcome = find_disagreement(kernel)
        assert engine == "fast"
        assert reference[0] == "ok" and outcome[0] == "ok"
        assert reference != outcome

    def test_cli_soak_exits_nonzero_and_pins(self, monkeypatch, tmp_path,
                                             capsys):
        _break_fast_engine(monkeypatch)
        rc = main(["soak", "--budget-seconds", "60", "--max-kernels", "1",
                   "--family", "branchy", "--no-shrink", "-q",
                   "--regressions-dir", str(tmp_path), "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["mismatches"] == 1
        assert payload["failures"][0]["engine"] == "fast"
        assert list(tmp_path.glob("*.json")) and list(tmp_path.glob("*.s"))

    def test_clean_cli_soak_exits_zero(self, tmp_path, capsys):
        rc = main(["soak", "--budget-seconds", "0", "--min-kernels", "1",
                   "--family", "baseline", "-q",
                   "--regressions-dir", str(tmp_path), "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["mismatches"] == 0
        assert not list(tmp_path.iterdir())


class TestWriteRegression:
    def test_pinned_pair_is_self_contained(self, tmp_path):
        kernel = generate_kernel("deep_nest", 0, 1)
        manifest_path = write_regression(kernel, "traced", tmp_path)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["kernel"] == kernel.name
        assert manifest["engines"] == list(SOAK_ENGINES)
        assert manifest["machine"] == kernel.machine.to_dict()
        source = (tmp_path / manifest["source_file"]).read_text()
        assert source == kernel.source
