"""Unit tests for legality checking and region planning."""

from repro.asm import assemble
from repro.cfg import build_cfg, find_loops
from repro.core.config import UZOLC, ZOLC_FULL, ZOLC_LITE, ZolcConfig
from repro.transform.legality import plan_transform
from repro.transform.patterns import match_all_loops


def plan_for(source, config):
    program = assemble(source)
    cfg = build_cfg(program)
    forest = find_loops(cfg)
    patterns, failures = match_all_loops(program, cfg, forest)
    return plan_transform(program, cfg, forest, patterns, failures, config), \
        forest


PERFECT_NEST = """
main:   li   t0, 4
outer:  li   t1, 4
inner:  add  s0, s0, t1
        addi t1, t1, -1
        bne  t1, zero, inner
        addi t0, t0, -1
        bne  t0, zero, outer
        halt
"""

NON_PERFECT = """
main:   li   t0, 4
outer:  li   t1, 4
inner:  add  s0, s0, t1
        addi t1, t1, -1
        bne  t1, zero, inner
        add  s1, s1, s0
        addi t0, t0, -1
        bne  t0, zero, outer
        halt
"""

MULTI_EXIT = """
main:   li   t0, 8
loop:   add  s0, s0, t0
        beq  s0, s1, escape
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
escape: halt
"""


class TestGrouping:
    def test_nest_forms_one_group(self):
        plan, forest = plan_for(PERFECT_NEST, ZOLC_LITE)
        assert len(plan.groups) == 1
        assert len(plan.groups[0].loops) == 2

    def test_zolc_ids_sequential(self):
        plan, _ = plan_for(PERFECT_NEST, ZOLC_LITE)
        ids = sorted(p.zolc_id for p in plan.groups[0].loops)
        assert ids == [0, 1]

    def test_parent_links(self):
        plan, forest = plan_for(PERFECT_NEST, ZOLC_LITE)
        outer = next(p for p in plan.groups[0].loops
                     if forest.loops[p.forest_id].depth == 1)
        inner = next(p for p in plan.groups[0].loops
                     if forest.loops[p.forest_id].depth == 2)
        assert inner.parent_forest_id == outer.forest_id
        assert outer.parent_forest_id is None

    def test_siblings_form_separate_groups(self):
        source = """
main:   li   t0, 3
a:      add  s0, s0, t0
        addi t0, t0, -1
        bne  t0, zero, a
        li   t1, 3
b:      add  s0, s0, t1
        addi t1, t1, -1
        bne  t1, zero, b
        halt
"""
        plan, _ = plan_for(source, ZOLC_LITE)
        assert len(plan.groups) == 2


class TestCascade:
    def test_perfect_nest_cascades(self):
        plan, forest = plan_for(PERFECT_NEST, ZOLC_LITE)
        inner = next(p for p in plan.groups[0].loops
                     if forest.loops[p.forest_id].depth == 2)
        assert inner.cascade

    def test_non_perfect_does_not_cascade(self):
        plan, forest = plan_for(NON_PERFECT, ZOLC_LITE)
        inner = next(p for p in plan.groups[0].loops
                     if forest.loops[p.forest_id].depth == 2)
        assert not inner.cascade


class TestConfigRestrictions:
    def test_uzolc_innermost_only(self):
        # Inner trips large enough to amortise per-entry initialization.
        source = PERFECT_NEST.replace("li   t1, 4", "li   t1, 16")
        plan, forest = plan_for(source, UZOLC)
        assert len(plan.groups) == 1
        planned = plan.groups[0].loops[0]
        assert forest.loops[planned.forest_id].depth == 2
        assert any("single" in reason for reason in plan.rejected.values())

    def test_lite_rejects_multi_exit(self):
        plan, _ = plan_for(MULTI_EXIT, ZOLC_LITE)
        assert not plan.groups
        assert any("multi-exit" in r or "exit" in r
                   for r in plan.rejected.values())

    def test_full_accepts_multi_exit(self):
        plan, _ = plan_for(MULTI_EXIT, ZOLC_FULL)
        assert len(plan.groups) == 1

    def test_capacity_sheds_shallowest(self):
        from repro.workloads.kernels.synthetic import nest_kernel
        kernel = nest_kernel(depth=4, trips=2, body_ops=1)
        tiny = ZolcConfig("tiny2", max_loops=2, max_task_entries=32,
                          entries_per_loop=1, multi_entry_exit=False)
        plan, forest = plan_for(kernel.source, tiny)
        assert len(plan.groups) == 1
        depths = sorted(forest.loops[p.forest_id].depth
                        for p in plan.groups[0].loops)
        assert depths == [3, 4]  # deepest kept
        assert sum("shed" in r for r in plan.rejected.values()) == 2


class TestRegSourceScopes:
    def test_bound_written_in_ancestor_rejected_for_lite(self):
        source = """
main:   li   s6, 4
        li   t0, 3
outer:  move t1, s6
inner:  add  s0, s0, t1
        addi t1, t1, -1
        bne  t1, zero, inner
        addi s6, s6, 1
        addi t0, t0, -1
        bne  t0, zero, outer
        halt
"""
        plan, forest = plan_for(source, ZOLC_LITE)
        rejected_inner = [r for fid, r in plan.rejected.items()
                          if forest.loops[fid].depth == 2]
        assert rejected_inner and "rewritten" in rejected_inner[0]

    def test_same_loop_allowed_for_uzolc(self):
        source = """
main:   li   s6, 4
        li   t0, 3
outer:  move t1, s6
inner:  add  s0, s0, t1
        addi t1, t1, -1
        bne  t1, zero, inner
        addi s6, s6, 1
        addi t0, t0, -1
        bne  t0, zero, outer
        halt
"""
        plan, forest = plan_for(source, UZOLC)
        # uZOLC re-arms per entry, so the varying bound is fine.
        assert len(plan.groups) == 1
        planned = plan.groups[0].loops[0]
        assert forest.loops[planned.forest_id].depth == 2


class TestIndexConflicts:
    def test_shared_index_register_in_nest_rejected(self):
        source = """
main:   li   t0, 4
outer:  add  s0, s0, t0
        li   t0, 4
inner:  add  s0, s0, t0
        addi t0, t0, -1
        bne  t0, zero, inner
        addi t0, t0, -1
        bne  t0, zero, outer
        halt
"""
        # Outer and inner share t0; the pattern matcher may reject this
        # outright, but if both match, legality must not plan both.
        plan, forest = plan_for(source, ZOLC_LITE)
        nested_pairs = 0
        for group in plan.groups:
            regs = [p.pattern.index_reg for p in group.loops]
            nested_pairs += len(regs) - len(set(regs))
        assert nested_pairs == 0


class TestProfitability:
    def test_uzolc_skips_unprofitable_short_loops(self):
        source = PERFECT_NEST  # inner loop: only 4 trips
        plan, _ = plan_for(source, UZOLC)
        assert not plan.groups
        assert any("amortise" in r for r in plan.rejected.values())

    def test_lite_keeps_short_loops(self):
        # One-shot init outside the nest: no per-entry cost to amortise.
        plan, _ = plan_for(PERFECT_NEST, ZOLC_LITE)
        assert len(plan.groups) == 1

    def test_uzolc_keeps_register_trip_loops(self):
        source = """
main:   move t0, s7
loop:   add  s0, s0, t0
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
"""
        plan, _ = plan_for(source, UZOLC)
        # Unknown trip count: assumed profitable.
        assert len(plan.groups) == 1
