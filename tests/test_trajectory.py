"""The benchmark trajectory gate (``repro.eval.trajectory``).

Pins the comparison semantics (what counts as a speedup column, the
regression floor, missing-column failures), the JSONL history format,
and the CLI exit discipline — CI trusts this gate to catch a real
engine regression, so the gate itself is tested against synthetic
baselines rather than live benchmark runs.
"""

from __future__ import annotations

import json

import pytest

from repro.eval.trajectory import (
    append_history,
    compare,
    history_entry,
    main,
    speedup_keys,
)

BASELINE = {
    "generated_by": "benchmarks/bench_throughput.py",
    "smoke": False,
    "figure2": {
        "machines": ["XRdefault"],
        "simulated_instructions": 1000,
        "fast_instructions_per_second": 1_000_000,
        "fast_speedup_vs_step": 4.0,
        "traced_speedup_vs_fast": 2.4,
    },
    "zolc": {
        "plan_speedup_vs_step": 3.5,
        "loop_resident_speedup_vs_traced": 1.02,
    },
}


def _current(**overrides):
    current = json.loads(json.dumps(BASELINE))
    current["smoke"] = True
    for dotted, value in overrides.items():
        section, key = dotted.split("__")
        if value is None:
            current[section].pop(key, None)
        else:
            current[section][key] = value
    return current


class TestCompare:
    def test_identical_runs_pass(self):
        assert compare(BASELINE, _current()) == []

    def test_small_drift_within_tolerance_passes(self):
        current = _current(figure2__fast_speedup_vs_step=3.2)  # -20%
        assert compare(BASELINE, current) == []

    def test_regression_past_tolerance_fails(self):
        current = _current(figure2__fast_speedup_vs_step=2.9)  # -27.5%
        problems = compare(BASELINE, current)
        assert len(problems) == 1
        assert "figure2.fast_speedup_vs_step" in problems[0]

    def test_tolerance_is_configurable(self):
        current = _current(figure2__fast_speedup_vs_step=3.2)  # -20%
        assert compare(BASELINE, current, tolerance=0.1)

    def test_missing_speedup_column_fails(self):
        problems = compare(BASELINE,
                           _current(zolc__plan_speedup_vs_step=None))
        assert len(problems) == 1
        assert "missing" in problems[0]

    def test_missing_section_fails(self):
        current = _current()
        del current["zolc"]
        problems = compare(BASELINE, current)
        assert problems and "section missing" in problems[0]

    def test_absolute_columns_are_not_gated(self):
        # Steps/sec are host-dependent: halving them must not fail.
        current = _current(figure2__fast_instructions_per_second=500_000)
        assert compare(BASELINE, current) == []

    def test_improvements_pass(self):
        current = _current(figure2__fast_speedup_vs_step=8.0)
        assert compare(BASELINE, current) == []


class TestSpeedupKeys:
    def test_selects_only_numeric_speedups(self):
        section = {"fast_speedup_vs_step": 4.0, "machines": ["x"],
                   "speedup_note": "text", "simulated_instructions": 9}
        assert speedup_keys(section) == {"fast_speedup_vs_step": 4.0}


class TestHistory:
    def test_entry_flattens_speedups_and_throughput(self):
        entry = history_entry(_current(), label="ci", timestamp=123.0)
        assert entry["label"] == "ci"
        assert entry["smoke"] is True
        assert entry["figure2.fast_speedup_vs_step"] == 4.0
        assert entry["figure2.fast_instructions_per_second"] == 1_000_000
        assert "figure2.simulated_instructions" not in entry

    def test_append_accumulates_jsonl(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(path, history_entry(_current(), timestamp=1.0))
        append_history(path, history_entry(_current(), timestamp=2.0))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["timestamp"] == 1.0


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_pass_exits_zero_and_appends_history(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", BASELINE)
        current = self._write(tmp_path, "cur.json", _current())
        history = tmp_path / "hist.jsonl"
        assert main([baseline, current, "--history", str(history),
                     "--label", "unit"]) == 0
        assert "trajectory gate ok" in capsys.readouterr().out
        assert json.loads(history.read_text())["label"] == "unit"

    def test_regression_exits_one_but_still_records(self, tmp_path,
                                                    capsys):
        baseline = self._write(tmp_path, "base.json", BASELINE)
        current = self._write(
            tmp_path, "cur.json",
            _current(zolc__plan_speedup_vs_step=1.0))
        history = tmp_path / "hist.jsonl"
        assert main([baseline, current,
                     "--history", str(history)]) == 1
        assert "FAILED" in capsys.readouterr().err
        assert history.exists()  # the regressing run is still recorded

    def test_unreadable_file_exits_nonzero(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", BASELINE)
        with pytest.raises(SystemExit):
            main([baseline, str(tmp_path / "missing.json")])

    def test_bad_tolerance_rejected(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", BASELINE)
        with pytest.raises(SystemExit):
            main([baseline, baseline, "--tolerance", "1.5"])

    def test_committed_baseline_gates_itself(self):
        """The real committed baseline passes against itself."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        baseline = str(root / "BENCH_throughput.json")
        assert main([baseline, baseline]) == 0
