"""Tracer integration with ZOLC redirects, and mfz read-back in-program."""

from repro.core import tables as T
from repro.core.config import ZOLC_LITE
from repro.cpu.simulator import Simulator
from repro.cpu.tracing import Tracer
from repro.transform.zolc_rewrite import rewrite_for_zolc

LOOP = """
        .data
out:    .word 0
        .text
main:   li   t0, 3
        li   s0, 0
loop:   addi s0, s0, 5
        addi t0, t0, -1
        bne  t0, zero, loop
        la   t1, out
        sw   s0, 0(t1)
        halt
"""


class TestTracerWithZolc:
    def test_redirects_recorded(self):
        result = rewrite_for_zolc(LOOP, ZOLC_LITE)
        tracer = Tracer(limit=1000)
        controller = result.make_controller()
        sim = Simulator(result.program, zolc=controller, tracer=tracer)
        controller.attach(sim.state.regs)
        sim.run()
        redirects = [r for r in tracer.records if r.zolc_redirect is not None]
        assert len(redirects) == 2  # two loop-backs for three trips
        body_pc = result.program.symbols["__zolc_body_0_0"]
        assert all(r.zolc_redirect == body_pc for r in redirects)

    def test_trace_format_mentions_redirect(self):
        result = rewrite_for_zolc(LOOP, ZOLC_LITE)
        tracer = Tracer(limit=1000)
        controller = result.make_controller()
        sim = Simulator(result.program, zolc=controller, tracer=tracer)
        controller.attach(sim.state.regs)
        sim.run()
        assert "zolc redirect" in tracer.format()


class TestMfzInProgram:
    def test_program_reads_back_its_own_tables(self):
        """A program can inspect the ZOLC through mfz (debug flow)."""
        trips_sel = T.loop_selector(0, T.F_TRIPS)
        status_sel = T.CTRL_STATUS
        source = f"""
        .data
seen_trips:  .word 0
seen_status: .word 0
        .text
main:
        li   at, 7
        mtz  at, {trips_sel}
        mfz  t0, {trips_sel}
        la   t1, seen_trips
        sw   t0, 0(t1)
        mfz  t2, {status_sel}
        la   t1, seen_status
        sw   t2, 0(t1)
        halt
"""
        from repro.asm import assemble
        from repro.core.controller import ZolcController

        program = assemble(source)
        controller = ZolcController(ZOLC_LITE)
        sim = Simulator(program, zolc=controller)
        controller.attach(sim.state.regs)
        sim.run()
        assert sim.memory.load_word(program.symbols["seen_trips"]) == 7
        assert sim.memory.load_word(program.symbols["seen_status"]) == 0
