"""Unit tests for the XR32 register naming."""

import pytest

from repro.isa.registers import (
    ABI_NAMES,
    NUM_REGISTERS,
    UnknownRegisterError,
    is_register_name,
    register_index,
    register_name,
)


class TestRegisterIndex:
    def test_abi_names_resolve(self):
        for index, name in enumerate(ABI_NAMES):
            assert register_index(name) == index

    def test_raw_names_resolve(self):
        for index in range(NUM_REGISTERS):
            assert register_index(f"r{index}") == index

    def test_dollar_prefix(self):
        assert register_index("$t0") == 8
        assert register_index("$zero") == 0

    def test_numeric(self):
        assert register_index("$31") == 31
        assert register_index("17") == 17

    def test_case_insensitive(self):
        assert register_index("SP") == 29

    def test_unknown_raises(self):
        with pytest.raises(UnknownRegisterError):
            register_index("bogus")

    def test_out_of_range_number(self):
        with pytest.raises(UnknownRegisterError):
            register_index("$32")


class TestRegisterName:
    def test_roundtrip(self):
        for index in range(NUM_REGISTERS):
            assert register_index(register_name(index)) == index

    def test_out_of_range(self):
        with pytest.raises(UnknownRegisterError):
            register_name(32)

    def test_is_register_name(self):
        assert is_register_name("t0")
        assert is_register_name("$v1")
        assert not is_register_name("loop")
        assert not is_register_name("123x")


class TestConventions:
    def test_zero_is_register_0(self):
        assert register_index("zero") == 0

    def test_ra_is_register_31(self):
        assert register_index("ra") == 31

    def test_sp_is_register_29(self):
        assert register_index("sp") == 29

    def test_abi_table_has_32_unique_names(self):
        assert len(ABI_NAMES) == 32
        assert len(set(ABI_NAMES)) == 32
