"""E3/E4: the cost model must reproduce the paper's published numbers.

Paper §3: "the requirements in storage resources are 30, 258 and 642
storage bytes and in combinational area 298, 4056, and 4428 equivalent
gates, respectively" for uZOLC, ZOLClite and ZOLCfull.
"""

from repro.core.config import UZOLC, ZOLC_FULL, ZOLC_LITE, ZolcConfig
from repro.core.costs import (
    area_breakdown,
    equivalent_gates,
    storage_breakdown,
    storage_bytes,
)


class TestPaperStorageNumbers:
    def test_uzolc_30_bytes(self):
        assert storage_bytes(UZOLC) == 30

    def test_lite_258_bytes(self):
        assert storage_bytes(ZOLC_LITE) == 258

    def test_full_642_bytes(self):
        assert storage_bytes(ZOLC_FULL) == 642


class TestPaperAreaNumbers:
    def test_uzolc_298_gates(self):
        assert equivalent_gates(UZOLC) == 298

    def test_lite_4056_gates(self):
        assert equivalent_gates(ZOLC_LITE) == 4056

    def test_full_4428_gates(self):
        assert equivalent_gates(ZOLC_FULL) == 4428


class TestBreakdownConsistency:
    def test_storage_components_sum(self):
        for config in (UZOLC, ZOLC_LITE, ZOLC_FULL):
            breakdown = storage_breakdown(config)
            assert breakdown.total == storage_bytes(config)

    def test_area_components_sum(self):
        for config in (UZOLC, ZOLC_LITE, ZOLC_FULL):
            breakdown = area_breakdown(config)
            assert breakdown.total == equivalent_gates(config)

    def test_uzolc_has_no_task_lut_storage(self):
        assert storage_breakdown(UZOLC).task_lut == 0
        assert area_breakdown(UZOLC).task_selection == 0

    def test_lite_has_no_exit_unit(self):
        assert area_breakdown(ZOLC_LITE).multi_exit_unit == 0

    def test_full_exit_unit_delta(self):
        # ZOLCfull - ZOLClite = the multi-entry/exit machinery only.
        assert (equivalent_gates(ZOLC_FULL) - equivalent_gates(ZOLC_LITE)
                == area_breakdown(ZOLC_FULL).multi_exit_unit)
        assert (storage_bytes(ZOLC_FULL) - storage_bytes(ZOLC_LITE)
                == storage_breakdown(ZOLC_FULL).entry_exit_records
                - storage_breakdown(ZOLC_LITE).entry_exit_records)


class TestExtrapolation:
    def test_storage_scales_with_loops(self):
        small = ZolcConfig("s", max_loops=4, max_task_entries=32,
                           entries_per_loop=1, multi_entry_exit=False)
        assert storage_bytes(small) == storage_bytes(ZOLC_LITE) - 4 * (12 + 16)

    def test_area_scales_with_task_entries(self):
        big = ZolcConfig("b", max_loops=8, max_task_entries=64,
                         entries_per_loop=1, multi_entry_exit=False)
        assert (equivalent_gates(big) - equivalent_gates(ZOLC_LITE)
                == 32 * 60)

    def test_monotone_in_entries_per_loop(self):
        e2 = ZolcConfig("e2", max_loops=8, max_task_entries=32,
                        entries_per_loop=2, multi_entry_exit=True)
        assert storage_bytes(ZOLC_LITE) < storage_bytes(e2) \
            < storage_bytes(ZOLC_FULL)
