"""The incremental backend seam: per-cell callbacks, warm pools,
and the one `jobs` convention.

Every backend must report each finished cell through ``on_result``
(index + result, or index + exception) *before* ``run_cells`` returns
or raises — that contract is what the runner's crash-safe persistence
and the service's event stream are built on.
"""

import os

import pytest

from repro.cpu.pipeline import PipelineConfig
from repro.eval.machines import M_ZOLC_LITE, XR_DEFAULT
from repro.experiments.backends import (
    BatchBackend,
    Cell,
    ProcessBackend,
    SerialBackend,
    _prepare_cached,
    get_backend,
)


def _cell(kernel="vec_sum", machine=XR_DEFAULT, penalty=1,
          max_steps=200_000) -> Cell:
    return Cell(kernel_name=kernel, machine=machine,
                pipeline=PipelineConfig(branch_penalty=penalty),
                max_steps=max_steps)


GRID = [_cell("vec_sum", XR_DEFAULT), _cell("vec_sum", M_ZOLC_LITE),
        _cell("dot_product", XR_DEFAULT), _cell("dot_product", M_ZOLC_LITE)]


class TestSerialCallbacks:
    def test_called_once_per_cell_in_cell_order(self):
        seen = []
        results = SerialBackend().run_cells(
            GRID, on_result=lambda i, r: seen.append((i, r)))
        assert [i for i, _ in seen] == [0, 1, 2, 3]
        assert [r for _, r in seen] == results

    def test_failure_reported_then_raised_after_completed_cells(self):
        cells = [GRID[0], _cell("no_such_kernel"), GRID[1]]
        seen = []
        with pytest.raises(KeyError, match="unknown kernel"):
            SerialBackend().run_cells(
                cells, on_result=lambda i, r: seen.append((i, r)))
        assert [i for i, _ in seen] == [0, 1]
        assert seen[0][1].verified  # cell 0 completed and was reported
        assert isinstance(seen[1][1], KeyError)  # cell 1 is the failure


class TestProcessCallbacks:
    def test_every_cell_reported_once_and_matches_serial(self):
        seen = {}
        backend = ProcessBackend(jobs=2)
        results = backend.run_cells(
            GRID, on_result=lambda i, r: seen.setdefault(i, r))
        assert sorted(seen) == [0, 1, 2, 3]
        serial = SerialBackend().run_cells(GRID)
        assert [r.record() for r in results] \
            == [r.record() for r in serial]
        for index, result in seen.items():
            assert result.record() == serial[index].record()

    def test_worker_failure_reported_with_its_index(self):
        cells = [GRID[0], _cell("no_such_kernel")]
        seen = {}
        with pytest.raises(KeyError, match="unknown kernel"):
            ProcessBackend(jobs=2).run_cells(
                cells, on_result=lambda i, r: seen.setdefault(i, r))
        assert isinstance(seen[1], KeyError)

    def test_persistent_pool_survives_across_run_cells(self):
        with ProcessBackend(jobs=1, persistent=True) as backend:
            backend.run_cells(GRID[:1])
            pool = backend._pool
            assert pool is not None  # even a 1-cell run used the pool
            backend.run_cells(GRID[1:2])
            assert backend._pool is pool  # same workers: caches stay warm
        assert backend._pool is None  # context exit closed it

    def test_persistent_pool_uses_spawn_workers(self):
        # Fork-started workers inherit every open fd of the service
        # process — including in-flight event-stream sockets, which
        # then never reach EOF on the client after the server closes
        # them.  Persistent pools must therefore spawn their workers.
        with ProcessBackend(jobs=1, persistent=True) as backend:
            backend.run_cells(GRID[:1])
            assert backend._pool._mp_context.get_start_method() == "spawn"

    def test_non_persistent_single_cell_degrades_to_serial(self, monkeypatch):
        import repro.experiments.backends as backends_module
        monkeypatch.setattr(backends_module, "ProcessPoolExecutor",
                            _Boom)
        result = ProcessBackend(jobs=4).run_cells(GRID[:1])
        assert result[0].verified  # never touched a pool


class _Boom:
    def __init__(self, *args, **kwargs):
        raise AssertionError("a process pool was created")


class TestBatchCallbacks:
    def test_lockstep_group_reports_every_member(self):
        cells = [_cell("vec_sum", M_ZOLC_LITE, penalty=p)
                 for p in (0, 1, 2, 3)]
        seen = {}
        results = BatchBackend(min_group=4).run_cells(
            cells, on_result=lambda i, r: seen.setdefault(i, r))
        assert sorted(seen) == [0, 1, 2, 3]
        serial = SerialBackend().run_cells(cells)
        assert [r.record() for r in results] \
            == [r.record() for r in serial]

    def test_scalar_routed_small_group_reports_too(self):
        seen = []
        BatchBackend(min_group=4).run_cells(
            GRID[:2], on_result=lambda i, r: seen.append(i))
        assert seen == [0, 1]


class TestWarmPrepareCache:
    def test_prepare_is_memoized_per_process(self, monkeypatch):
        import repro.experiments.backends as backends_module
        from repro.workloads.suite import registry

        source = registry().get("vec_sum").source
        monkeypatch.setattr(backends_module, "_PREPARE_CACHE", {})
        first = _prepare_cached(XR_DEFAULT, "vec_sum", source)
        again = _prepare_cached(XR_DEFAULT, "vec_sum", source)
        assert again is first  # warm: no re-prepare
        other = _prepare_cached(XR_DEFAULT, "vec_sum",
                                source + "\n# edited")
        assert other is not first  # source change misses, as it must

    def test_cached_prepare_measures_identically(self, monkeypatch):
        # Two simulations off one cached prepared program — the warm
        # worker path — retire bit-identical measurements.
        import repro.experiments.backends as backends_module

        monkeypatch.setattr(backends_module, "_PREPARE_CACHE", {})
        cell = _cell("dot_product", M_ZOLC_LITE)
        cold = backends_module._run_cell(cell)
        assert len(backends_module._PREPARE_CACHE) == 1
        warm = backends_module._run_cell(cell)
        assert warm.record() == cold.record()
        assert len(backends_module._PREPARE_CACHE) == 1

    def test_cache_is_bounded(self, monkeypatch):
        import repro.experiments.backends as backends_module
        from repro.workloads.suite import registry

        source = registry().get("vec_sum").source
        monkeypatch.setattr(backends_module, "_PREPARE_CACHE", {})
        monkeypatch.setattr(backends_module, "_PREPARE_CACHE_LIMIT", 2)
        for tag in ("a", "b", "c"):
            _prepare_cached(XR_DEFAULT, "vec_sum",
                            source + f"\n# {tag}")
        assert len(backends_module._PREPARE_CACHE) == 2


class TestJobsConvention:
    """One convention everywhere: None/0 = all CPUs, 1 = serial, n = n."""

    def test_none_and_zero_mean_one_worker_per_cpu(self):
        cpus = os.cpu_count() or 1
        assert ProcessBackend().worker_count() == cpus
        assert ProcessBackend(jobs=None).worker_count() == cpus
        assert ProcessBackend(jobs=0).worker_count() == cpus

    def test_explicit_counts(self):
        assert ProcessBackend(jobs=1).worker_count() == 1
        assert ProcessBackend(jobs=3).worker_count() == 3

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            ProcessBackend(jobs=-1)

    def test_get_backend_agrees_with_direct_construction(self):
        by_name = get_backend("process")
        assert isinstance(by_name, ProcessBackend)
        assert by_name.worker_count() == ProcessBackend().worker_count()
        assert get_backend("process", jobs=3).worker_count() == 3

    def test_get_backend_forwards_jobs_to_batch(self):
        # Retained (not dropped) so the runner can warn about it.
        assert get_backend("batch", jobs=2).jobs == 2

    def test_batch_backend_jobs_warns_at_run_experiment(self):
        from repro.experiments import ExperimentSpec, run_experiment

        spec = ExperimentSpec(name="t", kernels=("vec_sum",),
                              machines=(XR_DEFAULT,))
        with pytest.warns(RuntimeWarning, match="jobs=2 ignored: the "
                                                "batch backend"):
            run_experiment(spec, backend="batch", jobs=2)

    def test_serial_backend_jobs_still_warns(self):
        from repro.experiments import ExperimentSpec, run_experiment

        spec = ExperimentSpec(name="t", kernels=("vec_sum",),
                              machines=(XR_DEFAULT,))
        with pytest.warns(RuntimeWarning, match="jobs=2 ignored: the "
                                                "serial backend"):
            run_experiment(spec, backend="serial", jobs=2)
