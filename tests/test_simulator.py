"""Unit tests for the top-level simulator."""

import pytest

from repro.asm import assemble
from repro.cpu import (
    InvalidFetchError,
    PipelineConfig,
    Simulator,
    WatchdogError,
    run_program,
)


class TestBasicExecution:
    def test_halt_stops(self):
        sim = run_program(assemble("halt\n"))
        assert sim.state.halted
        assert sim.stats.instructions == 1

    def test_register_arithmetic(self):
        sim = run_program(assemble("li t0, 6\nli t1, 7\nmul t2, t0, t1\nhalt\n"))
        assert sim.state.regs["t2"] == 42

    def test_data_segment_loaded(self):
        sim = run_program(assemble(
            ".data\nx: .word 1234\n.text\nla t0, x\nlw t1, 0(t0)\nhalt\n"))
        assert sim.state.regs["t1"] == 1234

    def test_memory_writeback(self):
        sim = run_program(assemble(
            ".data\nout: .word 0\n.text\nli t0, 99\nla t1, out\n"
            "sw t0, 0(t1)\nhalt\n"))
        assert sim.memory.load_word(sim.program.symbols["out"]) == 99

    def test_stack_pointer_initialised(self):
        sim = Simulator(assemble("halt\n"))
        assert sim.state.regs["sp"] == sim.memory.size - 16

    def test_entry_point_main(self):
        sim = run_program(assemble("li t0, 1\nhalt\nmain: li t0, 2\nhalt\n"))
        assert sim.state.regs["t0"] == 2


class TestLoops:
    def test_counted_loop(self):
        sim = run_program(assemble(
            "li t0, 10\nli t1, 0\nloop: add t1, t1, t0\n"
            "addi t0, t0, -1\nbne t0, zero, loop\nhalt\n"))
        assert sim.state.regs["t1"] == 55

    def test_cycle_count_includes_penalties(self):
        # 2 setup + 3*10 loop instructions + halt = 33 instructions;
        # 9 taken branches (penalty 1) = 9 extra cycles.
        sim = run_program(assemble(
            "li t0, 10\nli t1, 0\nloop: add t1, t1, t0\n"
            "addi t0, t0, -1\nbne t0, zero, loop\nhalt\n"))
        assert sim.stats.instructions == 33
        assert sim.stats.cycles == 33 + 9
        assert sim.stats.taken_branches == 9

    def test_branch_penalty_configurable(self):
        source = ("li t0, 10\nli t1, 0\nloop: add t1, t1, t0\n"
                  "addi t0, t0, -1\nbne t0, zero, loop\nhalt\n")
        fast = run_program(assemble(source),
                           pipeline=PipelineConfig(branch_penalty=0))
        slow = run_program(assemble(source),
                           pipeline=PipelineConfig(branch_penalty=3))
        assert slow.stats.cycles - fast.stats.cycles == 3 * 9

    def test_load_use_stall_counted(self):
        sim = run_program(assemble(
            ".data\nx: .word 5\n.text\nla t0, x\nlw t1, 0(t0)\n"
            "add t2, t1, t1\nhalt\n"))
        assert sim.stats.stall_cycles == 1


class TestErrors:
    def test_fetch_outside_text(self):
        sim = Simulator(assemble("j 0x100\nhalt\n"))
        with pytest.raises(InvalidFetchError):
            sim.run()

    def test_watchdog(self):
        sim = Simulator(assemble("loop: b loop\nhalt\n"))
        with pytest.raises(WatchdogError):
            sim.run(max_steps=100)


STALLING_LOOP = (".data\nx: .word 5\n.text\n"
                 "lui  t0, 1\n"            # t0 = 0x10000 = &x
                 "loop: lw t1, 0(t0)\n"
                 "add  t2, t1, t1\n"       # load-use stall every iteration
                 "j    loop\n"
                 "halt\n")


class TestCounterSyncOnEveryExit:
    """stall/flush counters must be coherent however the run ends."""

    @pytest.mark.parametrize("engine", ["fast", "step"])
    def test_watchdog_exit_syncs_counters(self, engine):
        sim = Simulator(assemble(STALLING_LOOP))
        with pytest.raises(WatchdogError):
            sim.run(max_steps=31, engine=engine)
        # 10 completed iterations: one load-use stall and one taken-jump
        # flush each.
        assert sim.stats.stall_cycles == 10
        assert sim.stats.flush_cycles == 10
        assert sim.stats.cycles == 31 + 10 + 10

    def test_step_callers_see_live_counters(self):
        sim = Simulator(assemble(STALLING_LOOP))
        for _ in range(3):  # lui, lw, add -> one stall charged
            sim.step()
        assert sim.stats.stall_cycles == 1
        assert sim.stats.stall_cycles == sim.timing.stall_cycles

    def test_clean_halt_unchanged(self):
        sim = run_program(assemble("nop\nhalt\n"))
        assert sim.stats.stall_cycles == 0
        assert sim.stats.flush_cycles == 0


class _RedirectingPort:
    """Minimal ZolcPort that redirects one retirement, no task switch."""

    def __init__(self, at_pc, to_pc):
        self.at_pc = at_pc
        self.to_pc = to_pc
        self.active = True

    def write(self, selector, value):
        raise AssertionError("unused")

    def read(self, selector):
        raise AssertionError("unused")

    def on_retire(self, pc, next_pc, taken=False):
        from repro.cpu import ZolcAction
        if pc == self.at_pc:
            return ZolcAction(self.to_pc, is_task_switch=False)
        return None


class TestRedirectClearsLoadPairing:
    """A PC redirect that is not a task switch must still invalidate the
    pending load-use pairing: the redirected fetch cannot consume the
    load back-to-back."""

    SOURCE = (".data\nx: .word 7\n.text\n"
              "lui  t0, 1\n"
              "lw   t1, 0(t0)\n"
              "add  t2, t1, t1\n"
              "halt\n")

    @pytest.mark.parametrize("engine", ["fast", "step"])
    def test_no_phantom_stall_across_redirect(self, engine):
        # Redirect at the lw retirement (pc 0x4) to the add (0x8): same
        # successor address, but now across a redirected fetch boundary.
        sim = Simulator(assemble(self.SOURCE),
                        zolc=_RedirectingPort(at_pc=0x4, to_pc=0x8))
        sim.run(engine=engine)
        assert sim.state.regs["t2"] == 14
        assert sim.stats.stall_cycles == 0
        assert sim.stats.cycles == 4

    @pytest.mark.parametrize("engine", ["fast", "step"])
    def test_stall_still_charged_without_redirect(self, engine):
        sim = Simulator(assemble(self.SOURCE))
        sim.run(engine=engine)
        assert sim.stats.stall_cycles == 1
        assert sim.stats.cycles == 5


class TestCategoryStats:
    def test_categories_counted(self):
        sim = run_program(assemble(
            ".data\nx: .word 1\n.text\nla t0, x\nlw t1, 0(t0)\n"
            "sw t1, 0(t0)\nhalt\n"))
        by_cat = sim.stats.by_category
        assert by_cat["load"] == 1
        assert by_cat["store"] == 1

    def test_cpi_computed(self):
        sim = run_program(assemble("nop\nhalt\n"))
        assert sim.stats.cpi == pytest.approx(1.0)


class TestTracer:
    def test_trace_records_collected(self):
        from repro.cpu import Tracer
        tracer = Tracer(limit=100)
        sim = Simulator(assemble("li t0, 2\nhalt\n"), tracer=tracer)
        sim.run()
        assert len(tracer.records) == 2
        assert "addi" in tracer.records[0].text

    def test_trace_limit_drops(self):
        from repro.cpu import Tracer
        tracer = Tracer(limit=1)
        sim = Simulator(assemble("nop\nnop\nhalt\n"), tracer=tracer)
        sim.run()
        assert len(tracer.records) == 1
        assert tracer.dropped == 2
        assert "dropped" in tracer.format()

    def test_trace_columns_align_above_64k(self):
        from repro.cpu.tracing import TraceRecord, Tracer
        tracer = Tracer()
        tracer.record(TraceRecord(pc=0x0040, text="nop", cycles_after=1))
        tracer.record(TraceRecord(pc=0x12340, text="halt", cycles_after=2))
        low, high = tracer.format().splitlines()
        assert low.index("nop") == high.index("halt")
        assert high.startswith("0x00012340")
