"""Unit tests for dominator analysis."""

from repro.asm import assemble
from repro.cfg import build_cfg, compute_dominators

DIAMOND = """
main:   beq  t0, zero, right
left:   addi t1, zero, 1
        j    join
right:  addi t1, zero, 2
join:   halt
"""

NESTED = """
main:   li   t0, 3
outer:  li   t1, 3
inner:  addi t1, t1, -1
        bne  t1, zero, inner
        addi t0, t0, -1
        bne  t0, zero, outer
        halt
"""


class TestDiamond:
    def setup_method(self):
        self.cfg = build_cfg(assemble(DIAMOND))
        self.dom = compute_dominators(self.cfg)

    def _id(self, address):
        return self.cfg.block_id_at(address)

    def test_entry_dominates_all(self):
        for block_id in self.cfg.reachable_ids():
            assert self.dom.dominates(self.cfg.entry_id, block_id)

    def test_branches_do_not_dominate_join(self):
        assert not self.dom.dominates(self._id(4), self._id(16))
        assert not self.dom.dominates(self._id(12), self._id(16))

    def test_join_idom_is_entry(self):
        assert self.dom.idom[self._id(16)] == self.cfg.entry_id

    def test_self_domination(self):
        assert self.dom.dominates(self._id(4), self._id(4))

    def test_dominator_chain(self):
        chain = self.dom.dominator_chain(self._id(16))
        assert chain[0] == self._id(16)
        assert chain[-1] == self.cfg.entry_id


class TestNestedLoops:
    def setup_method(self):
        self.cfg = build_cfg(assemble(NESTED))
        self.dom = compute_dominators(self.cfg)

    def test_outer_header_dominates_inner(self):
        outer = self.cfg.block_id_at(4)
        inner = self.cfg.block_id_at(8)
        assert self.dom.dominates(outer, inner)

    def test_inner_header_dominates_latch(self):
        inner = self.cfg.block_id_at(8)
        # inner header == inner latch block here (single-block loop)
        assert self.dom.dominates(inner, inner)

    def test_inner_does_not_dominate_outer_latch(self):
        inner = self.cfg.block_id_at(8)
        outer_latch = self.cfg.block_id_at(16)
        # the outer latch is only reachable through inner, which is fine:
        # inner DOES dominate it in this layout
        assert self.dom.dominates(inner, outer_latch)
