"""The static verifier: positive sweep plus a seeded negative corpus.

The negative tests corrupt exactly one verifier input each — a span
slicing extended across a watch address (ZV001), a malformed watch
(ZV002), a tampered span table that forces an illegal chain (ZV003),
an index-register write inside a watched body (ZV004), an undeclared
side entry (ZV005) — and assert the documented rule id fires.
"""

import pytest

from repro.asm import assemble
from repro.cpu.analysis import (
    RULES,
    SEVERITIES,
    Diagnostic,
    StaticZolcPlan,
    VerifyContext,
    WatchedLoop,
    chain_candidates,
    verify_program,
)
from repro.cpu.ir import build_ir
from repro.eval.check import check_kernel, run_check, static_plan
from repro.eval.machines import machine_registry
from repro.isa.registers import register_index
from repro.workloads.suite import registry

T3 = register_index("t3")

#: A transformed-shape loop: the latch is gone, the body falls
#: straight through the trigger address.
PLAIN_LOOP = """
body:
    addi t0, t0, 1
    addi t1, t1, 1
trigger:
    addi t2, t2, 1
    halt
"""


def _context(source, plan, terms=None):
    program = assemble(source)
    ir = build_ir(program)
    assert ir is not None
    return program, VerifyContext(ir=ir, base=program.text_base,
                                  entry_pc=program.entry_point(),
                                  plan=plan, terms=terms)


def _plan(program, index_reg=T3, entry_pcs=(), exit_pcs=(),
          has_entry_record=False):
    sym = program.symbols
    loop = WatchedLoop(loop_id=0, group=0, index_reg=index_reg,
                       body_pc=sym["body"],
                       trigger_pc=sym["trigger"],
                       span_end=sym["trigger"],
                       has_entry_record=has_entry_record)
    return StaticZolcPlan(loops=(loop,), entry_pcs=entry_pcs,
                          exit_pcs=exit_pcs)


def _verify(program, plan, terms=None):
    ir = build_ir(program)
    assert ir is not None
    return verify_program(ir, program.text_base,
                          entry_pc=program.entry_point(), plan=plan,
                          terms=terms)


def _errors(findings):
    return [d for d in findings if d.severity == "error"]


class TestDiagnostic:
    def test_rule_catalogue_is_complete(self):
        assert set(RULES) == {"ZV001", "ZV002", "ZV003", "ZV004",
                              "ZV005", "ZV006", "AU001", "AU002",
                              "AU003", "AU004", "AU005"}
        assert SEVERITIES == ("error", "warning", "info")

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("ZZ999", "error", "nope")
        with pytest.raises(ValueError):
            Diagnostic("ZV001", "fatal", "nope")

    def test_to_dict_and_tagged(self):
        diag = Diagnostic("ZV004", "error", "msg", pc_lo=4, pc_hi=8)
        tagged = diag.tagged("vec_sum", "ZOLCfull")
        assert tagged.to_dict() == {
            "rule": "ZV004", "severity": "error", "message": "msg",
            "pc_lo": 4, "pc_hi": 8,
            "kernel": "vec_sum", "machine": "ZOLCfull"}


class TestPositive:
    def test_plain_loop_is_clean(self):
        program = assemble(PLAIN_LOOP)
        findings = _verify(program, _plan(program))
        assert _errors(findings) == []

    @pytest.mark.parametrize("kernel", ["vec_sum", "fir", "matmul"])
    def test_suite_kernels_verify_clean(self, kernel):
        for machine in machine_registry().all():
            findings = check_kernel(registry().get(kernel), machine)
            assert _errors(findings) == [], (kernel, machine.name)

    def test_run_check_report_shape(self):
        report = run_check(["vec_sum"], ["ZOLCfull"])
        assert report.errors == 0
        payload = report.to_dict()
        assert payload["kernels"] == ["vec_sum"]
        assert payload["machines"] == ["ZOLCfull"]
        assert payload["checked"] == 1
        assert not payload["audited"]

    def test_static_plan_resolves_labels(self):
        machine = machine_registry().get("ZOLCfull")
        prepared = machine.prepare(registry().get("vec_sum").source)
        plan = static_plan(prepared)
        assert plan is not None and plan.loops
        sym = prepared.program.symbols
        for lp in plan.loops:
            assert lp.body_pc in sym.values()
        assert plan.watched_next_pcs()

    def test_no_controller_means_no_plan(self):
        machine = machine_registry().get("XRdefault")
        prepared = machine.prepare(registry().get("vec_sum").source)
        assert static_plan(prepared) is None


class TestZV001:
    def test_span_crossing_a_watch_address(self):
        # Tampered slicing: a single span claims to run from the body
        # straight across the trigger watch — the verifier must reject
        # the crossing even though each instruction is individually
        # plain.
        program = assemble(PLAIN_LOOP)
        tampered = [3, 1, 3, 3]
        findings = _verify(program, _plan(program), terms=tampered)
        hits = [d for d in _errors(findings) if d.rule == "ZV001"]
        assert hits, findings
        assert any("watch address" in d.message for d in hits)

    def test_degenerate_terminator(self):
        program = assemble(PLAIN_LOOP)
        tampered = [0, 1, 3, 2]
        findings = _verify(program, _plan(program), terms=tampered)
        hits = [d for d in _errors(findings) if d.rule == "ZV001"]
        assert any("degenerate" in d.message for d in hits)


class TestZV002:
    def test_misaligned_trigger(self):
        program = assemble(PLAIN_LOOP)
        sym = program.symbols
        plan = StaticZolcPlan(loops=(WatchedLoop(
            loop_id=0, group=0, index_reg=T3, body_pc=sym["body"],
            trigger_pc=sym["trigger"] + 2,
            span_end=sym["trigger"]),))
        findings = _verify(program, plan)
        assert any(d.rule == "ZV002" and "word-aligned" in d.message
                   for d in _errors(findings))

    def test_watch_outside_text(self):
        program = assemble(PLAIN_LOOP)
        plan = StaticZolcPlan(loops=(WatchedLoop(
            loop_id=0, group=0, index_reg=T3, body_pc=0x10000,
            trigger_pc=None, span_end=None),))
        findings = _verify(program, plan)
        assert any(d.rule == "ZV002" and "outside" in d.message
                   for d in _errors(findings))

    def test_exit_watch_on_non_branch(self):
        program = assemble(PLAIN_LOOP)
        plan = _plan(program,
                     exit_pcs=(program.symbols["body"],))
        findings = _verify(program, plan)
        assert any(d.rule == "ZV002"
                   and "does not sit on a branch" in d.message
                   for d in _errors(findings))


class TestZV003:
    def test_plain_body_is_a_chain_candidate(self):
        program = assemble(PLAIN_LOOP)
        _, ctx = _context(PLAIN_LOOP, _plan(program))
        assert chain_candidates(ctx) == [(0, 1, 0)]

    def test_branch_terminated_body_never_chains(self):
        # The terminator reaches the trigger only on the not-taken
        # path; promoting it to a chain would mis-count iterations.
        source = """
body:
    addi t0, t0, 1
    bne  t0, t1, body
trigger:
    addi t2, t2, 1
    halt
"""
        program = assemble(source)
        _, ctx = _context(source, _plan(program))
        assert chain_candidates(ctx) == []
        findings = _verify(program, _plan(program))
        assert _errors(findings) == []
        assert any(d.rule == "ZV003" and d.severity == "info"
                   for d in findings)

    def test_watch_inside_a_forced_chain(self):
        # Corrupt the span table so the chain covers an entry watch:
        # condition 2 must fire.
        source = """
body:
    addi t0, t0, 1
    addi t1, t1, 1
inside:
    addi t2, t2, 1
trigger:
    addi t3, t3, 1
    halt
"""
        program = assemble(source)
        plan = StaticZolcPlan(
            loops=_plan(program, index_reg=register_index("t4")).loops,
            entry_pcs=(program.symbols["inside"],))
        tampered = [2, 1, 2, 4, 4]
        findings = _verify(program, plan, terms=tampered)
        assert any(d.rule == "ZV003" and "condition 2" in d.message
                   for d in _errors(findings))


class TestZV004:
    def test_index_register_write_in_watched_body(self):
        source = """
body:
    addi t3, t3, 1
    addi t1, t1, 1
trigger:
    addi t2, t2, 1
    halt
"""
        program = assemble(source)
        findings = _verify(program, _plan(program, index_reg=T3))
        hits = [d for d in _errors(findings) if d.rule == "ZV004"]
        assert len(hits) == 1
        assert "t3" in hits[0].message
        assert hits[0].pc_lo == program.symbols["body"]

    def test_clean_body_passes(self):
        program = assemble(PLAIN_LOOP)
        findings = _verify(program, _plan(program, index_reg=T3))
        assert [d for d in findings if d.rule == "ZV004"] == []


class TestZV005:
    SIDE_ENTRY = """
    beq  t0, zero, inside
body:
    addi t0, t0, 1
inside:
    addi t1, t1, 1
trigger:
    addi t2, t2, 1
    halt
"""

    def test_undeclared_side_entry_warns(self):
        program = assemble(self.SIDE_ENTRY)
        findings = _verify(program, _plan(program))
        hits = [d for d in findings
                if d.rule == "ZV005" and d.severity == "warning"]
        assert len(hits) == 1
        assert "side entry" in hits[0].message

    def test_entry_record_silences_the_warning(self):
        program = assemble(self.SIDE_ENTRY)
        plan = _plan(program, has_entry_record=True,
                     entry_pcs=(program.symbols["inside"],))
        findings = _verify(program, plan)
        assert [d for d in findings if d.rule == "ZV005"] == []
