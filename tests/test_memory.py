"""Unit + property tests for the simulator memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.exceptions import MemoryAccessError
from repro.cpu.memory import Memory


@pytest.fixture()
def mem():
    return Memory(size=4096)


class TestWord:
    def test_roundtrip(self, mem):
        mem.store_word(100, 0xDEADBEEF)
        assert mem.load_word(100) == 0xDEADBEEF

    def test_little_endian(self, mem):
        mem.store_word(0, 0x11223344)
        assert mem.load_byte(0, signed=False) == 0x44
        assert mem.load_byte(3, signed=False) == 0x11

    def test_negative_value_wraps(self, mem):
        mem.store_word(8, -1)
        assert mem.load_word(8) == 0xFFFFFFFF

    def test_misaligned_rejected(self, mem):
        with pytest.raises(MemoryAccessError):
            mem.load_word(2)
        with pytest.raises(MemoryAccessError):
            mem.store_word(6, 0)

    def test_out_of_range(self, mem):
        with pytest.raises(MemoryAccessError):
            mem.load_word(4096)
        with pytest.raises(MemoryAccessError):
            mem.load_word(-4)


class TestHalfAndByte:
    def test_half_signed(self, mem):
        mem.store_half(10, 0x8000)
        assert mem.load_half(10) == -32768
        assert mem.load_half(10, signed=False) == 0x8000

    def test_byte_signed(self, mem):
        mem.store_byte(5, 0xFF)
        assert mem.load_byte(5) == -1
        assert mem.load_byte(5, signed=False) == 255

    def test_half_misaligned(self, mem):
        with pytest.raises(MemoryAccessError):
            mem.load_half(3)

    def test_store_truncates(self, mem):
        mem.store_byte(0, 0x1FF)
        assert mem.load_byte(0, signed=False) == 0xFF


class TestBlocks:
    def test_block_roundtrip(self, mem):
        mem.store_block(64, b"hello world")
        assert mem.load_block(64, 11) == b"hello world"

    def test_block_out_of_range(self, mem):
        with pytest.raises(MemoryAccessError):
            mem.store_block(4090, b"too big here")

    def test_words_roundtrip(self, mem):
        values = [1, 2**31, 0xFFFFFFFF, 0]
        mem.store_words(0, values)
        assert mem.load_words(0, 4) == values

    def test_words_signed(self, mem):
        mem.store_words(0, [0xFFFFFFFF, 5])
        assert mem.load_words_signed(0, 2) == [-1, 5]


class TestConstruction:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Memory(size=0)

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            Memory(size=10)

    def test_initially_zero(self, mem):
        assert mem.load_word(0) == 0
        assert mem.load_word(4092) == 0


class TestProperties:
    @given(st.integers(min_value=0, max_value=1020),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_word_store_load_identity(self, offset, value):
        mem = Memory(size=1024)
        address = offset & ~3
        mem.store_word(address, value)
        assert mem.load_word(address) == value

    @given(st.binary(min_size=0, max_size=64),
           st.integers(min_value=0, max_value=960))
    def test_block_identity(self, payload, address):
        mem = Memory(size=1024)
        mem.store_block(address, payload)
        assert mem.load_block(address, len(payload)) == payload
