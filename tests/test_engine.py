"""Differential tests: predecoded fast engine vs the legacy interpreter.

The fast engine must retire *identical* (pc, regs, cycles, stats)
sequences to ``step()`` — that invariant is what makes the engine a pure
optimisation.  We check it three ways: final-state equivalence across
the full kernel suite on every machine (ZOLC and non-ZOLC), lockstep
per-retirement equivalence on representative kernels, and a hypothesis
sweep over random ALU programs.
"""

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.cpu import Simulator, WatchdogError
from repro.cpu.engine import predecode
from repro.eval.machines import ALL_MACHINES
from repro.workloads.suite import registry

from test_differential import _alu_instruction, _render


def _state_tuple(sim):
    return (sim.state.pc, sim.state.halted, sim.state.regs.snapshot(),
            asdict(sim.stats), sim.timing.stall_cycles,
            sim.timing.flush_cycles, sim.timing._pending_load_dest)


def _run_pair(prepared, max_steps=20_000_000):
    fast = prepared.make_simulator()
    fast.run(max_steps=max_steps, engine="fast")
    slow = prepared.make_simulator()
    slow.run(max_steps=max_steps, engine="step")
    return fast, slow


class TestSuiteEquivalence:
    @pytest.mark.parametrize("machine", ALL_MACHINES, ids=lambda m: m.name)
    def test_full_suite_matches_step_engine(self, kernel_registry, machine):
        """Every kernel retires to the same final state on both engines."""
        for kernel in kernel_registry.all():
            prepared = machine.prepare(kernel.source)
            fast, slow = _run_pair(prepared)
            assert _state_tuple(fast) == _state_tuple(slow), \
                f"{kernel.name} on {machine.name} diverged"
            kernel.check(fast)  # the golden model holds on the fast engine


class TestLockstepEquivalence:
    """Per-retirement equivalence, via the watchdog's single-step trick.

    ``run(max_steps=1)`` executes exactly one instruction before the
    watchdog fires, and the fast engine syncs all counters on every exit
    path — so catching :class:`WatchdogError` yields a legal retire-by-
    retire observation of the fast loop.
    """

    @pytest.mark.parametrize("machine_name", ["XRdefault", "ZOLClite"])
    def test_retire_sequences_identical(self, kernel_registry, machine_name):
        machine = next(m for m in ALL_MACHINES if m.name == machine_name)
        prepared = machine.prepare(kernel_registry.get("vec_sum").source)
        fast = prepared.make_simulator()
        slow = prepared.make_simulator()
        for retirement in range(50_000):
            if slow.state.halted:
                break
            slow.step()
            if slow.state.halted:
                fast.run(max_steps=1, engine="fast")  # halt retires cleanly
            else:
                with pytest.raises(WatchdogError):
                    fast.run(max_steps=1, engine="fast")
            assert _state_tuple(fast) == _state_tuple(slow), \
                f"diverged at retirement {retirement}"
        else:
            pytest.fail("kernel did not halt")
        assert fast.state.halted and slow.state.halted


class TestRandomPrograms:
    @settings(max_examples=40, deadline=None)
    @given(spec=st.lists(_alu_instruction(), min_size=1, max_size=24),
           seeds=st.lists(st.integers(min_value=-(2**31),
                                      max_value=2**31 - 1),
                          min_size=4, max_size=4))
    def test_engines_agree_on_random_alu_programs(self, spec, seeds):
        source = _render(spec, seeds)
        fast = Simulator(assemble(source))
        fast.run(engine="fast")
        slow = Simulator(assemble(source))
        slow.run(engine="step")
        assert _state_tuple(fast) == _state_tuple(slow)


class TestEngineSelection:
    def test_auto_uses_fast_and_caches_predecode(self):
        sim = Simulator(assemble("li t0, 3\nhalt\n"))
        sim.run()
        assert sim._predecoded is not None and sim._predecoded is not False
        assert sim.state.regs["t0"] == 3

    def test_tracer_falls_back_to_step(self):
        from repro.cpu import Tracer
        tracer = Tracer(limit=10)
        sim = Simulator(assemble("li t0, 3\nhalt\n"), tracer=tracer)
        sim.run()
        assert len(tracer.records) == 2

    def test_forced_fast_with_tracer_rejected(self):
        from repro.cpu import Tracer
        sim = Simulator(assemble("halt\n"), tracer=Tracer(limit=10))
        with pytest.raises(ValueError, match="does not record traces"):
            sim.run(engine="fast")

    def test_unknown_engine_rejected(self):
        sim = Simulator(assemble("halt\n"))
        with pytest.raises(ValueError):
            sim.run(engine="turbo")

    def test_predecode_covers_whole_text(self):
        sim = Simulator(assemble("li t0, 1\nli t1, 2\nhalt\n"))
        predecoded = predecode(sim)
        assert predecoded is not None
        assert len(predecoded.ops) == len(sim.program.instructions)

    def test_predecoder_covers_every_executor_mnemonic(self):
        """The fast engine's tables must track datapath.EXECUTORS.

        A gap would silently demote programs using the missing mnemonic
        to the stepped interpreter; this pins the two op tables together.
        """
        from repro.cpu.datapath import EXECUTORS
        from repro.cpu.engine import _predecode_fn
        from repro.isa.instructions import Instruction

        sim = Simulator(assemble("halt\n"))
        for mnemonic in EXECUTORS:
            fn = _predecode_fn(Instruction(mnemonic, address=0), 0, sim)
            assert callable(fn), mnemonic

    def test_predecode_gap_falls_back_to_step(self, monkeypatch):
        # A mnemonic the predecoder does not cover must degrade to the
        # stepped interpreter under engine="auto", not blow up run().
        import repro.cpu.simulator as simulator_module
        from repro.cpu import SimulationError

        def boom(sim):
            raise SimulationError("no predecoder for mnemonic 'frobnicate'")

        monkeypatch.setattr(simulator_module, "predecode", boom)
        sim = Simulator(assemble("li t0, 9\nhalt\n"))
        sim.run()
        assert sim._predecoded is False
        assert sim.state.regs["t0"] == 9

    def test_zolc_swap_invalidates_predecode_cache(self):
        sim = Simulator(assemble("li t0, 1\nhalt\n"))
        sim.run()
        first = sim._predecoded
        assert first is not False

        class _InertPort:
            active = False

            def write(self, selector, value): ...
            def read(self, selector): return 0
            def on_retire(self, pc, next_pc, taken=False): return None

        sim.zolc = _InertPort()
        assert sim._ensure_predecoded() is not first


class _HaltingPort:
    """ZolcPort that halts the machine externally after N retirements."""

    def __init__(self, after):
        self.after = after
        self.seen = 0
        self.active = True
        self.state = None

    def write(self, selector, value): ...
    def read(self, selector): return 0

    def on_retire(self, pc, next_pc, taken=False):
        self.seen += 1
        if self.seen >= self.after:
            self.state.halted = True
        return None


class TestExternalHalt:
    @pytest.mark.parametrize("engine", ["fast", "step"])
    def test_port_halting_from_on_retire_stops_both_engines(self, engine):
        source = "li t0, 100\nloop: addi t0, t0, -1\nbne t0, zero, loop\nhalt\n"
        port = _HaltingPort(after=5)
        sim = Simulator(assemble(source), zolc=port)
        port.state = sim.state
        sim.run(max_steps=1000, engine=engine)
        assert sim.state.halted
        assert sim.stats.instructions == 5


class TestFaultPaths:
    def test_watchdog_message_and_state_synced(self):
        source = "li t0, 5\nloop: addi t0, t0, -1\nbne t0, zero, loop\nhalt\n"
        fast = Simulator(assemble(source))
        slow = Simulator(assemble(source))
        with pytest.raises(WatchdogError):
            fast.run(max_steps=7, engine="fast")
        with pytest.raises(WatchdogError):
            slow.run(max_steps=7, engine="step")
        assert _state_tuple(fast) == _state_tuple(slow)

    def test_invalid_fetch_matches(self):
        from repro.cpu import InvalidFetchError
        source = "j 0x200\nhalt\n"
        fast = Simulator(assemble(source))
        slow = Simulator(assemble(source))
        with pytest.raises(InvalidFetchError):
            fast.run(engine="fast")
        with pytest.raises(InvalidFetchError):
            slow.run(engine="step")
        assert _state_tuple(fast) == _state_tuple(slow)

    def test_unplaced_zolc_instruction_raises(self):
        from repro.cpu import SimulationError
        sim = Simulator(assemble("mtz t0, 4\nhalt\n"))
        with pytest.raises(SimulationError, match="without a ZOLC"):
            sim.run(engine="fast")
