"""Differential tests: the fast and traced engines vs the interpreter.

Every engine must retire *identical* (pc, regs, cycles, stats)
sequences to ``step()`` — that invariant is what makes the engines pure
optimisations.  We check it four ways: final-state equivalence across
the full kernel suite on every machine (ZOLC and non-ZOLC), lockstep
per-retirement equivalence on representative kernels, a hypothesis
sweep over random ALU programs, and the deterministic traced-tier
corners (watchdog-exact batching, mid-region fault reconciliation,
cache invalidation).  Generated-program coverage for all three engines
lives in ``tests/test_engine_fuzz.py``.
"""

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.cpu import Simulator, WatchdogError
from repro.cpu.engine import predecode
from repro.eval.machines import ALL_MACHINES

from strategies import alu_instructions, render_alu_program


def _state_tuple(sim):
    return (sim.state.pc, sim.state.halted, sim.state.regs.snapshot(),
            asdict(sim.stats), sim.timing.stall_cycles,
            sim.timing.flush_cycles, sim.timing._pending_load_dest)


def _run_pair(prepared, max_steps=20_000_000):
    fast = prepared.make_simulator()
    fast.run(max_steps=max_steps, engine="fast")
    slow = prepared.make_simulator()
    slow.run(max_steps=max_steps, engine="step")
    return fast, slow


class TestSuiteEquivalence:
    @pytest.mark.parametrize("machine", ALL_MACHINES, ids=lambda m: m.name)
    def test_full_suite_matches_step_engine(self, kernel_registry, machine):
        """Every kernel retires to the same final state on both engines."""
        for kernel in kernel_registry.all():
            prepared = machine.prepare(kernel.source)
            fast, slow = _run_pair(prepared)
            assert _state_tuple(fast) == _state_tuple(slow), \
                f"{kernel.name} on {machine.name} diverged"
            kernel.check(fast)  # the golden model holds on the fast engine


class TestLockstepEquivalence:
    """Per-retirement equivalence, via the watchdog's single-step trick.

    ``run(max_steps=1)`` executes exactly one instruction before the
    watchdog fires, and the fast engine syncs all counters on every exit
    path — so catching :class:`WatchdogError` yields a legal retire-by-
    retire observation of the fast loop.
    """

    @pytest.mark.parametrize("machine_name,kernel_name", [
        ("XRdefault", "vec_sum"),
        ("ZOLClite", "vec_sum"),
        # Single-shot controller: disarms/re-arms across the run, so the
        # fast engine's compiled dispatch state churns per loop.
        ("uZOLC", "matmul"),
        # Multi-exit kernel on ZOLCfull: exit-record and entry-record
        # dispatch under the compiled plan, retire by retire.
        ("ZOLCfull", "vecmax_early"),
    ])
    def test_retire_sequences_identical(self, kernel_registry, machine_name,
                                        kernel_name):
        machine = next(m for m in ALL_MACHINES if m.name == machine_name)
        prepared = machine.prepare(kernel_registry.get(kernel_name).source)
        fast = prepared.make_simulator()
        slow = prepared.make_simulator()
        for retirement in range(50_000):
            if slow.state.halted:
                break
            slow.step()
            if slow.state.halted:
                fast.run(max_steps=1, engine="fast")  # halt retires cleanly
            else:
                with pytest.raises(WatchdogError):
                    fast.run(max_steps=1, engine="fast")
            assert _state_tuple(fast) == _state_tuple(slow), \
                f"diverged at retirement {retirement}"
        else:
            pytest.fail("kernel did not halt")
        assert fast.state.halted and slow.state.halted


class TestRandomPrograms:
    @settings(max_examples=40, deadline=None)
    @given(spec=st.lists(alu_instructions(), min_size=1, max_size=24),
           seeds=st.lists(st.integers(min_value=-(2**31),
                                      max_value=2**31 - 1),
                          min_size=4, max_size=4))
    def test_engines_agree_on_random_alu_programs(self, spec, seeds):
        source = render_alu_program(spec, seeds)
        fast = Simulator(assemble(source))
        fast.run(engine="fast")
        slow = Simulator(assemble(source))
        slow.run(engine="step")
        assert _state_tuple(fast) == _state_tuple(slow)


class TestEngineSelection:
    def test_auto_resolves_to_traced_and_caches_predecode(self):
        sim = Simulator(assemble("li t0, 3\nhalt\n"))
        sim.run()
        assert sim.last_engine == "traced"
        assert sim._predecoded is not None and sim._predecoded is not False
        assert sim.state.regs["t0"] == 3

    def test_explicit_fast_and_step_remain_overrides(self):
        for engine in ("fast", "step"):
            sim = Simulator(assemble("li t0, 3\nhalt\n"))
            sim.run(engine=engine)
            assert sim.last_engine == engine
            assert sim.state.regs["t0"] == 3

    def test_tracer_falls_back_to_step(self):
        from repro.cpu import Tracer
        tracer = Tracer(limit=10)
        sim = Simulator(assemble("li t0, 3\nhalt\n"), tracer=tracer)
        sim.run()
        assert sim.last_engine == "step"
        assert len(tracer.records) == 2

    def test_forced_fast_with_tracer_rejected(self):
        from repro.cpu import Tracer
        sim = Simulator(assemble("halt\n"), tracer=Tracer(limit=10))
        with pytest.raises(ValueError, match="does not record traces"):
            sim.run(engine="fast")

    def test_unknown_engine_rejected(self):
        sim = Simulator(assemble("halt\n"))
        with pytest.raises(ValueError):
            sim.run(engine="turbo")

    def test_predecode_covers_whole_text(self):
        sim = Simulator(assemble("li t0, 1\nli t1, 2\nhalt\n"))
        predecoded = predecode(sim)
        assert predecoded is not None
        assert len(predecoded.ops) == len(sim.program.instructions)

    def test_predecoder_covers_every_executor_mnemonic(self):
        """The fast engine's tables must track datapath.EXECUTORS.

        A gap would silently demote programs using the missing mnemonic
        to the stepped interpreter; this pins the two op tables together.
        """
        from repro.cpu.datapath import EXECUTORS
        from repro.cpu.engine import _predecode_fn
        from repro.isa.instructions import Instruction

        sim = Simulator(assemble("halt\n"))
        for mnemonic in EXECUTORS:
            fn = _predecode_fn(Instruction(mnemonic, address=0), 0, sim)
            assert callable(fn), mnemonic

    def test_predecode_gap_falls_back_to_step(self, monkeypatch):
        # A mnemonic the predecoder does not cover must degrade to the
        # stepped interpreter under engine="auto", not blow up run().
        import repro.cpu.simulator as simulator_module
        from repro.cpu import SimulationError

        def boom(sim):
            raise SimulationError("no predecoder for mnemonic 'frobnicate'")

        monkeypatch.setattr(simulator_module, "predecode", boom)
        sim = Simulator(assemble("li t0, 9\nhalt\n"))
        sim.run()
        assert sim._predecoded is False
        assert sim.last_engine == "step"
        assert sim.state.regs["t0"] == 9

    def test_zolc_swap_invalidates_predecode_cache(self):
        sim = Simulator(assemble("li t0, 1\nhalt\n"))
        sim.run()
        first = sim._predecoded
        assert first is not False

        class _InertPort:
            active = False

            def write(self, selector, value): ...
            def read(self, selector): return 0
            def on_retire(self, pc, next_pc, taken=False): return None

        sim.zolc = _InertPort()
        assert sim._ensure_predecoded() is not first


class _HaltingPort:
    """ZolcPort that halts the machine externally after N retirements."""

    def __init__(self, after):
        self.after = after
        self.seen = 0
        self.active = True
        self.state = None

    def write(self, selector, value): ...
    def read(self, selector): return 0

    def on_retire(self, pc, next_pc, taken=False):
        self.seen += 1
        if self.seen >= self.after:
            self.state.halted = True
        return None


class TestExternalHalt:
    @pytest.mark.parametrize("engine", ["fast", "step"])
    def test_port_halting_from_on_retire_stops_both_engines(self, engine):
        source = "li t0, 100\nloop: addi t0, t0, -1\nbne t0, zero, loop\nhalt\n"
        port = _HaltingPort(after=5)
        sim = Simulator(assemble(source), zolc=port)
        port.state = sim.state
        sim.run(max_steps=1000, engine=engine)
        assert sim.state.halted
        assert sim.stats.instructions == 5


def _controller_tuple(sim):
    """Controller-internal state the differential tests also pin down."""
    zolc = sim.zolc
    while hasattr(zolc, "inner"):  # unwrap PlanlessZolcPort adapters
        zolc = zolc.inner
    if zolc is None or not hasattr(zolc, "task_switches"):
        return None
    return (zolc.task_switches, zolc.exit_events, zolc.entry_events,
            zolc.arm_count,
            [s.iterations_done for s in zolc.unit.status])


# A hand-armed single-loop program: the body is one instruction, the
# trigger is the address right after it, so every body retirement is a
# watched next-pc.  Phase 2 reprograms TRIPS/INITIAL/BODY/TRIGGER and
# re-arms mid-run — the compiled plan must be invalidated and rebuilt.
REARM_SRC = """
        .text
main:
        addi at, zero, 5
        mtz  at, 256            # loop 0 TRIPS
        addi at, zero, 0
        mtz  at, 257            # INITIAL
        addi at, zero, 1
        mtz  at, 258            # STEP
        addi at, zero, 8
        mtz  at, 259            # INDEX_REG = t0
        ori  at, zero, %lo(body1)
        mtz  at, 260            # BODY_PC
        ori  at, zero, %lo(after1)
        mtz  at, 261            # TRIGGER_PC
        ori  at, zero, 0xFFFF
        mtz  at, 262            # PARENT = NO_PARENT
        addi at, zero, 1
        mtz  at, 263            # FLAGS = VALID
        addi at, zero, 1
        mtz  at, 0              # CTRL_ARM
body1:
        add  s0, s0, t0         # s0 += 0+1+2+3+4 = 10
after1:
        addi at, zero, 3
        mtz  at, 256            # TRIPS = 3
        addi at, zero, 10
        mtz  at, 257            # INITIAL = 10
        ori  at, zero, %lo(body2)
        mtz  at, 260
        ori  at, zero, %lo(after2)
        mtz  at, 261
        addi at, zero, 1
        mtz  at, 0              # re-arm
body2:
        add  s1, s1, t0         # s1 += 10+11+12 = 33
after2:
        halt
"""

# The same armed loop entered repeatedly: an enclosing software loop
# re-runs the whole init sequence, so the controller re-arms once per
# outer iteration and the engine's watch-array cache must serve the
# recompilation.
REINVOKE_SRC = """
        .text
main:
        addi s2, zero, 3        # three invocations
outer:
        addi at, zero, 4
        mtz  at, 256            # loop 0 TRIPS
        addi at, zero, 0
        mtz  at, 257            # INITIAL
        addi at, zero, 1
        mtz  at, 258            # STEP
        addi at, zero, 8
        mtz  at, 259            # INDEX_REG = t0
        ori  at, zero, %lo(body)
        mtz  at, 260            # BODY_PC
        ori  at, zero, %lo(after)
        mtz  at, 261            # TRIGGER_PC
        ori  at, zero, 0xFFFF
        mtz  at, 262            # PARENT
        addi at, zero, 1
        mtz  at, 263            # FLAGS = VALID
        addi at, zero, 1
        mtz  at, 0              # CTRL_ARM
body:
        add  s0, s0, t0         # += 0+1+2+3 = 6 per invocation
after:
        addi s2, s2, -1
        bne  s2, zero, outer
        halt
"""


def _zolc_sim(source):
    from repro.core import ZolcController
    from repro.core.config import ZOLC_LITE

    sim = Simulator(assemble(source), zolc=ZolcController(ZOLC_LITE))
    sim.zolc.attach(sim.state.regs)
    return sim


class TestReArm:
    """Differential coverage for mid-run re-arming through the fast path.

    The suite-equivalence tests above re-arm too (multi-group kernels,
    uZOLC's one-arm-per-loop discipline), but these programs pin the
    interesting transitions directly: table rewrites between arms, and
    repeated invocation of one armed region.
    """

    def test_rearm_with_rewritten_tables_matches_step(self):
        fast = _zolc_sim(REARM_SRC)
        fast.run(max_steps=10_000, engine="fast")
        slow = _zolc_sim(REARM_SRC)
        slow.run(max_steps=10_000, engine="step")
        assert _state_tuple(fast) == _state_tuple(slow)
        assert _controller_tuple(fast) == _controller_tuple(slow)
        assert fast.zolc.arm_count == 2
        assert fast.state.regs["s0"] == 10
        assert fast.state.regs["s1"] == 33

    def test_repeated_invocation_matches_step(self):
        fast = _zolc_sim(REINVOKE_SRC)
        fast.run(max_steps=10_000, engine="fast")
        slow = _zolc_sim(REINVOKE_SRC)
        slow.run(max_steps=10_000, engine="step")
        assert _state_tuple(fast) == _state_tuple(slow)
        assert _controller_tuple(fast) == _controller_tuple(slow)
        assert fast.zolc.arm_count == 3
        assert fast.state.regs["s0"] == 18

    def test_repeated_invocation_reuses_compiled_watch_arrays(self):
        sim = _zolc_sim(REINVOKE_SRC)
        sim.run(max_steps=10_000, engine="fast")
        # Three arms of identical tables compile once: the watch-array
        # cache is keyed by watch-set content, not by arm epoch.
        assert len(sim._zolc_watch_cache) == 1

    def test_rearm_lockstep(self):
        """Retire-by-retire equivalence across both arms of REARM_SRC."""
        fast = _zolc_sim(REARM_SRC)
        slow = _zolc_sim(REARM_SRC)
        for retirement in range(10_000):
            if slow.state.halted:
                break
            slow.step()
            if slow.state.halted:
                fast.run(max_steps=1, engine="fast")
            else:
                with pytest.raises(WatchdogError):
                    fast.run(max_steps=1, engine="fast")
            assert _state_tuple(fast) == _state_tuple(slow), \
                f"diverged at retirement {retirement}"
            assert _controller_tuple(fast) == _controller_tuple(slow), \
                f"controller diverged at retirement {retirement}"
        else:
            pytest.fail("program did not halt")


class TestPlanlessFallback:
    """A port without ``zolc_plan`` (any pre-compiled-plan custom
    :class:`ZolcPort`) must fall back to per-retirement ``on_retire``
    and still retire an identical sequence."""

    @pytest.mark.parametrize("kernel_name", ["vec_sum", "matmul"])
    def test_planless_port_matches_plan_port(self, kernel_registry,
                                             kernel_name):
        from repro.cpu import PlanlessZolcPort

        machine = next(m for m in ALL_MACHINES if m.name == "ZOLClite")
        prepared = machine.prepare(kernel_registry.get(kernel_name).source)

        planful = prepared.make_simulator()
        planful.run(engine="fast")

        planless = prepared.make_simulator()
        planless.zolc = PlanlessZolcPort(planless.zolc)
        planless.run(engine="fast")

        assert _state_tuple(planful) == _state_tuple(planless)
        assert _controller_tuple(planful) == _controller_tuple(planless)
        # The planless run never compiled watch arrays.
        assert planless._zolc_watch_cache == {}
        assert planful._zolc_watch_cache != {}


class TestFireHandlerHalt:
    def test_port_halting_from_fire_trigger_stops_both_engines(self):
        """The plan contract allows fire handlers to halt the machine.

        The fast engine must observe the flag after every fired event,
        exactly like the legacy loop observes it after on_retire.
        """
        from repro.core import ZolcController
        from repro.core.config import ZOLC_LITE

        class HaltingController(ZolcController):
            def __init__(self, config, after):
                super().__init__(config)
                self.after = after
                self.state = None

            def fire_trigger(self, loop_id):
                decision = super().fire_trigger(loop_id)
                if self.task_switches >= self.after:
                    self.state.halted = True
                return decision

        def run(engine):
            sim = Simulator(assemble(REARM_SRC),
                            zolc=HaltingController(ZOLC_LITE, after=3))
            sim.zolc.attach(sim.state.regs)
            sim.zolc.state = sim.state
            sim.run(max_steps=10_000, engine=engine)
            return sim

        fast = run("fast")
        slow = run("step")
        assert fast.state.halted and slow.state.halted
        assert _state_tuple(fast) == _state_tuple(slow)
        assert _controller_tuple(fast) == _controller_tuple(slow)
        assert fast.zolc.task_switches == 3


class TestPreArmedController:
    def test_programmatically_armed_controller_matches_step(self):
        """Arming before run() exercises the pending-writes window.

        zolc_plan() withholds the plan until the arm-time index writes
        flush through on_retire at the first retirement, so the fast
        engine starts in its transient legacy mode and then switches to
        compiled dispatch.
        """
        from repro.core import tables as T

        source = """
        .text
main:
        add  s0, s0, t0
after:
        halt
"""

        def build():
            sim = _zolc_sim(source)
            zolc = sim.zolc
            program = sim.program
            zolc.write(T.loop_selector(0, T.F_TRIPS), 7)
            zolc.write(T.loop_selector(0, T.F_INITIAL), 0)
            zolc.write(T.loop_selector(0, T.F_STEP), 1)
            zolc.write(T.loop_selector(0, T.F_INDEX_REG), 8)
            zolc.write(T.loop_selector(0, T.F_BODY_PC),
                       program.symbols["main"])
            zolc.write(T.loop_selector(0, T.F_TRIGGER_PC),
                       program.symbols["after"])
            zolc.write(T.loop_selector(0, T.F_FLAGS), T.FLAG_VALID)
            zolc.write(T.CTRL_ARM, 1)
            assert zolc.zolc_plan() is None  # pending arm-time writes
            return sim

        fast = build()
        fast.run(max_steps=1_000, engine="fast")
        slow = build()
        slow.run(max_steps=1_000, engine="step")
        assert _state_tuple(fast) == _state_tuple(slow)
        assert _controller_tuple(fast) == _controller_tuple(slow)
        assert fast.state.regs["s0"] == sum(range(7))


class TestFaultPaths:
    def test_watchdog_message_and_state_synced(self):
        source = "li t0, 5\nloop: addi t0, t0, -1\nbne t0, zero, loop\nhalt\n"
        fast = Simulator(assemble(source))
        slow = Simulator(assemble(source))
        with pytest.raises(WatchdogError):
            fast.run(max_steps=7, engine="fast")
        with pytest.raises(WatchdogError):
            slow.run(max_steps=7, engine="step")
        assert _state_tuple(fast) == _state_tuple(slow)

    def test_invalid_fetch_matches(self):
        from repro.cpu import InvalidFetchError
        source = "j 0x200\nhalt\n"
        fast = Simulator(assemble(source))
        slow = Simulator(assemble(source))
        with pytest.raises(InvalidFetchError):
            fast.run(engine="fast")
        with pytest.raises(InvalidFetchError):
            slow.run(engine="step")
        assert _state_tuple(fast) == _state_tuple(slow)

    def test_unplaced_zolc_instruction_raises(self):
        from repro.cpu import SimulationError
        sim = Simulator(assemble("mtz t0, 4\nhalt\n"))
        with pytest.raises(SimulationError, match="without a ZOLC"):
            sim.run(engine="fast")


class TestTracedEngine:
    """The trace-batched tier: selection, equivalence, caches, faults.

    Bulk equivalence coverage for ``engine="traced"`` lives in the
    generated suite (``tests/test_engine_fuzz.py``); these tests pin the
    deterministic corners — watchdog-exact batching, fault
    reconciliation inside a fused region, re-arm invalidation and the
    two cache layers.
    """

    def test_traced_matches_step_on_rearm_programs(self):
        for source in (REARM_SRC, REINVOKE_SRC):
            traced = _zolc_sim(source)
            traced.run(max_steps=10_000, engine="traced")
            slow = _zolc_sim(source)
            slow.run(max_steps=10_000, engine="step")
            assert _state_tuple(traced) == _state_tuple(slow)
            assert _controller_tuple(traced) == _controller_tuple(slow)

    def test_traced_lockstep_is_watchdog_exact(self):
        """max_steps=1 never lets a region overshoot the watchdog."""
        machine = next(m for m in ALL_MACHINES if m.name == "ZOLClite")
        prepared = machine.prepare(
            "li t0, 0\nloop: addi t0, t0, 1\nslti at, t0, 9\n"
            "bne at, zero, loop\nhalt\n")
        traced = prepared.make_simulator()
        slow = prepared.make_simulator()
        for retirement in range(200):
            if slow.state.halted:
                break
            slow.step()
            if slow.state.halted:
                traced.run(max_steps=1, engine="traced")
            else:
                with pytest.raises(WatchdogError):
                    traced.run(max_steps=1, engine="traced")
            assert _state_tuple(traced) == _state_tuple(slow), \
                f"diverged at retirement {retirement}"
        else:
            pytest.fail("program did not halt")

    def test_fault_inside_fused_region_reconciles_exactly(self):
        """A mid-region memory fault retires its prefix, like the others."""
        from repro.cpu import MemoryAccessError

        source = ("li t0, 1\nli t1, 2\nadd t2, t0, t1\n"
                  "sw t2, -5(zero)\nadd t3, t0, t1\nhalt\n")
        sims = {}
        for engine in ("step", "fast", "traced"):
            sim = Simulator(assemble(source))
            with pytest.raises(MemoryAccessError):
                sim.run(engine=engine)
            sims[engine] = sim
        assert _state_tuple(sims["traced"]) == _state_tuple(sims["step"])
        assert _state_tuple(sims["fast"]) == _state_tuple(sims["step"])
        # The prefix (li, li, add) retired; the faulting store did not.
        assert sims["traced"].stats.instructions == 3
        assert sims["traced"].state.regs["t2"] == 3

    def test_traced_fault_paths_match(self):
        source = "li t0, 5\nloop: addi t0, t0, -1\nbne t0, zero, loop\nhalt\n"
        traced = Simulator(assemble(source))
        slow = Simulator(assemble(source))
        with pytest.raises(WatchdogError):
            traced.run(max_steps=7, engine="traced")
        with pytest.raises(WatchdogError):
            slow.run(max_steps=7, engine="step")
        assert _state_tuple(traced) == _state_tuple(slow)

        from repro.cpu import InvalidFetchError
        traced = Simulator(assemble("j 0x200\nhalt\n"))
        with pytest.raises(InvalidFetchError):
            traced.run(engine="traced")

    def test_traced_rejects_tracer_and_unknown_engine(self):
        from repro.cpu import Tracer
        sim = Simulator(assemble("halt\n"), tracer=Tracer(limit=10))
        with pytest.raises(ValueError, match="does not record traces"):
            sim.run(engine="traced")
        sim = Simulator(assemble("halt\n"))
        with pytest.raises(ValueError, match="unknown engine"):
            sim.run(engine="warp")

    def test_traced_requires_predecodable_program(self, monkeypatch):
        import repro.cpu.simulator as simulator_module
        from repro.cpu import SimulationError

        def boom(sim):
            raise SimulationError("no predecoder for mnemonic 'frobnicate'")

        monkeypatch.setattr(simulator_module, "predecode", boom)
        sim = Simulator(assemble("halt\n"))
        with pytest.raises(ValueError, match="cannot be predecoded"):
            sim.run(engine="traced")

    def test_region_code_cache_shared_across_simulators(self):
        """Compiled megahandler code lives on the Program, so repeated
        simulations of one prepared kernel compile each region once."""
        machine = next(m for m in ALL_MACHINES if m.name == "ZOLClite")
        prepared = machine.prepare(
            "li t0, 0\nloop: addi t0, t0, 1\nslti at, t0, 9\n"
            "bne at, zero, loop\nhalt\n")
        first = prepared.make_simulator()
        first.run(engine="traced")
        cache = prepared.program.__dict__["_trace_region_code"]
        compiled = dict(cache)
        assert compiled                      # something was fused
        second = prepared.make_simulator()
        second.run(engine="traced")
        for span, entry in compiled.items():
            assert cache[span] is entry      # no recompilation
        assert _state_tuple(first) == _state_tuple(second)

    def test_region_tables_cached_by_plan_content(self):
        """Three arms of identical tables slice regions once (plus the
        unarmed table), and a port swap clears the fused regions."""
        sim = _zolc_sim(REINVOKE_SRC)
        sim.run(max_steps=10_000, engine="traced")
        # One unarmed table (key None) + one table for the repeatedly
        # re-armed plan — not one per arm.
        assert sim.zolc.arm_count == 3
        assert None in sim._trace_region_cache
        plan_keys = [k for k in sim._trace_region_cache if k is not None]
        assert len(plan_keys) == 1
        sim.zolc = None
        sim._ensure_predecoded()
        assert sim._trace_region_cache == {}

    def test_planless_port_falls_back_to_fast_loop(self, kernel_registry):
        from repro.cpu import PlanlessZolcPort

        machine = next(m for m in ALL_MACHINES if m.name == "ZOLClite")
        prepared = machine.prepare(kernel_registry.get("vec_sum").source)

        planful = prepared.make_simulator()
        planful.run(engine="traced")
        planless = prepared.make_simulator()
        planless.zolc = PlanlessZolcPort(planless.zolc)
        planless.run(engine="traced")
        assert _state_tuple(planful) == _state_tuple(planless)
        assert _controller_tuple(planful) == _controller_tuple(planless)
        # The planless run never sliced regions: it ran the fast loop.
        assert planless._trace_region_cache == {}


class TestLoopResident:
    """The fire→re-entry chain: engagement, exactness, fault paths.

    A loop whose whole body is one fused region executes iteration
    batches inside a generated chain (engine.py `_chain_code`); these
    tests pin that the chain actually engages on the canonical shape,
    and that watchdog budgets, faults and counters stay bit-identical
    to the per-instruction engines — batching must never be observable.
    """

    # A straight-line body of >= 2 instructions with an up-count latch:
    # the transform converts it, the body fuses into one region, and
    # every trigger fire loops back to the region entry.
    LOOP_SRC = """
        .data
scratch: .word 0, 0, 0, 0
        .text
main:
        li   s0, 0
        la   t8, scratch
        li   t0, 0
loop:
        add  s0, s0, t0
        sw   s0, 0(t8)
        addi t0, t0, 1
        slti at, t0, 9
        bne  at, zero, loop
        halt
"""

    def _prepared(self):
        machine = next(m for m in ALL_MACHINES if m.name == "ZOLClite")
        prepared = machine.prepare(self.LOOP_SRC)
        assert prepared.transformed_loops >= 1
        return prepared

    def test_chain_engages_and_matches_step(self):
        from repro.cpu.engine import _NO_CHAIN

        prepared = self._prepared()
        traced = prepared.make_simulator()
        traced.run(engine="traced")
        chains = [c for c in traced._trace_chain_cache.values()
                  if c is not _NO_CHAIN]
        assert chains, "the canonical loop-back did not chain"
        slow = prepared.make_simulator()
        slow.run(engine="step")
        assert _state_tuple(traced) == _state_tuple(slow)
        assert _controller_tuple(traced) == _controller_tuple(slow)

    def test_chain_respects_every_watchdog_budget(self):
        """Cutting the run at every step count mid-chain stays exact."""
        prepared = self._prepared()
        for budget in range(1, 60):
            traced = prepared.make_simulator()
            slow = prepared.make_simulator()
            outcomes = []
            for sim, engine in ((traced, "traced"), (slow, "step")):
                try:
                    sim.run(max_steps=budget, engine=engine)
                    outcomes.append("halt")
                except WatchdogError:
                    outcomes.append("watchdog")
            assert outcomes[0] == outcomes[1], f"budget {budget}"
            assert _state_tuple(traced) == _state_tuple(slow), \
                f"diverged at budget {budget}"
            assert _controller_tuple(traced) == _controller_tuple(slow), \
                f"controller diverged at budget {budget}"

    def test_memory_fault_inside_chain_reconciles(self):
        """A store that faults mid-iteration lands on the exact state."""
        from repro.cpu import MemoryAccessError

        source = """
        .text
main:
        li   t0, 0
        lui  t8, 3              # 0x30000, memory is 0x40000 bytes
loop:
        sw   t0, 0(t8)
        addi t8, t8, 16384      # walks off the end mid-run
        addi t0, t0, 1
        slti at, t0, 12
        bne  at, zero, loop
        halt
"""
        machine = next(m for m in ALL_MACHINES if m.name == "ZOLClite")
        prepared = machine.prepare(source)
        assert prepared.transformed_loops >= 1
        sims = {}
        for engine in ("step", "fast", "traced"):
            sim = prepared.make_simulator()
            with pytest.raises(MemoryAccessError):
                sim.run(engine=engine)
            sims[engine] = sim
        for engine in ("fast", "traced"):
            assert _state_tuple(sims[engine]) == _state_tuple(sims["step"])
            assert _controller_tuple(sims[engine]) == \
                _controller_tuple(sims["step"])

    def test_fire_fault_inside_chain_reconciles(self):
        """A controller fault raised by a chained fire stays exact.

        Rewriting the armed loop's trigger tables is not expressible
        mid-chain (no mtz retires inside a region), so fault injection
        monkeypatches the decision path instead: the Nth task switch
        raises, in every engine, and the post-mortem states must agree.
        """
        from repro.cpu.exceptions import ZolcFaultError

        prepared = self._prepared()
        sims = {}
        for engine in ("step", "fast", "traced"):
            sim = prepared.make_simulator()
            controller = sim.zolc
            real_decide = controller.unit.decide
            calls = []

            def exploding(loop_id, depth=0, _real=real_decide,
                          _calls=calls):
                _calls.append(loop_id)
                if len(_calls) == 5:
                    raise ZolcFaultError("injected mid-run fault")
                return _real(loop_id, depth)

            controller.unit.decide = exploding
            controller._decide = exploding
            with pytest.raises(ZolcFaultError):
                sim.run(engine=engine)
            sims[engine] = sim
        for engine in ("fast", "traced"):
            assert _state_tuple(sims[engine]) == _state_tuple(sims["step"])


class TestInlinedMemory:
    """Byte/half/word access semantics of the fused-region codegen.

    The traced tier generates bounds-checked loads/stores against the
    raw memory buffer; these pin the sign-extension identities and the
    fault paths (misalignment, out-of-range) against the other engines.
    """

    def _agree(self, source, fault=None):
        sims = {}
        for engine in ("step", "fast", "traced"):
            sim = Simulator(assemble(source))
            if fault is None:
                sim.run(engine=engine)
            else:
                with pytest.raises(fault):
                    sim.run(engine=engine)
            sims[engine] = sim
        for engine in ("fast", "traced"):
            assert _state_tuple(sims[engine]) == _state_tuple(sims["step"]), \
                f"{engine} diverged"
        return sims["traced"]

    def test_signed_and_unsigned_subword_loads(self):
        traced = self._agree("""
        .data
bytes:  .word 0x80FF7F01
        .text
main:
        la   t8, bytes
        lb   t0, 3(t8)          # 0x80 -> 0xFFFFFF80
        lbu  t1, 3(t8)          # 0x80
        lb   t2, 1(t8)          # 0x7F stays positive... (0xFF at 1)
        lbu  t3, 1(t8)
        lh   s0, 2(t8)          # 0x80FF -> sign-extended
        lhu  s1, 2(t8)
        lh   s2, 0(t8)          # 0x7F01 positive
        sb   t0, 4(t8)
        sh   s0, 6(t8)
        halt
""")
        regs = traced.state.regs
        assert regs["t0"] == 0xFFFFFF80
        assert regs["t1"] == 0x80
        assert regs["s0"] == 0xFFFF80FF
        assert regs["s1"] == 0x80FF
        assert regs["s2"] == 0x7F01

    def test_misaligned_half_load_faults_identically(self):
        from repro.cpu import MemoryAccessError

        self._agree("""
main:
        li   t0, 3
        add  t1, t0, t0
        lh   t2, 0(t0)          # misaligned halfword
        halt
""", fault=MemoryAccessError)

    def test_out_of_range_store_faults_identically(self):
        from repro.cpu import MemoryAccessError

        self._agree("""
main:
        lui  t0, 16             # 0x100000, past 256 KiB
        li   t1, 7
        sw   t1, 0(t0)
        halt
""", fault=MemoryAccessError)

    def test_rt_zero_load_still_faults(self):
        from repro.cpu import MemoryAccessError

        self._agree("""
main:
        lui  t0, 16
        li   t1, 1
        lw   zero, 0(t0)        # discarded value, real fault
        halt
""", fault=MemoryAccessError)
