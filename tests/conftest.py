"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.workloads.suite import figure2_kernels, registry


@pytest.fixture(scope="session")
def kernel_registry():
    """The benchmark registry (built once per session)."""
    return registry()


@pytest.fixture(scope="session")
def fig2_kernels():
    """The 12 Figure 2 benchmarks."""
    return figure2_kernels()


NESTED_SUM_SRC = """
        .data
result: .word 0
        .text
main:
        li   s0, 0
        li   t0, 0
outer:
        li   t1, 0
inner:
        mul  t2, t0, t1
        add  s0, s0, t2
        addi t1, t1, 1
        slti at, t1, 12
        bne  at, zero, inner
        addi t0, t0, 1
        slti at, t0, 8
        bne  at, zero, outer
        la   t3, result
        sw   s0, 0(t3)
        halt
"""

NESTED_SUM_EXPECTED = sum(i * j for i in range(8) for j in range(12))


@pytest.fixture()
def nested_sum_source():
    """A canonical two-level up-counting nest used across transform tests."""
    return NESTED_SUM_SRC


@pytest.fixture()
def nested_sum_expected():
    return NESTED_SUM_EXPECTED
