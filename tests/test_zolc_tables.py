"""Unit tests for the ZOLC tables and selector map."""

import pytest

from repro.core import tables as T
from repro.core.config import UZOLC, ZOLC_FULL, ZOLC_LITE
from repro.core.tables import ZolcTables
from repro.cpu.exceptions import ZolcFaultError


@pytest.fixture()
def full():
    return ZolcTables(ZOLC_FULL)


@pytest.fixture()
def lite():
    return ZolcTables(ZOLC_LITE)


class TestSelectors:
    def test_loop_selector_layout(self):
        assert T.loop_selector(0, T.F_TRIPS) == 0x100
        assert T.loop_selector(1, T.F_TRIPS) == 0x110
        assert T.loop_selector(2, T.F_FLAGS) == 0x127

    def test_loop_selector_bad_field(self):
        with pytest.raises(ValueError):
            T.loop_selector(0, 8)

    def test_exit_selector_layout(self):
        assert T.exit_selector(0, T.X_BRANCH_PC) == 0x1000
        assert T.exit_selector(3, T.X_FLAGS) == 0x1000 + 12 + 3

    def test_entry_selector_layout(self):
        assert T.entry_selector(1, T.N_LOOP) == 0x2005


class TestWriteRead:
    def test_loop_field_roundtrip(self, full):
        sel = T.loop_selector(2, T.F_TRIPS)
        full.write(sel, 100)
        assert full.read(sel) == 100
        assert full.loops[2].trips == 100

    def test_all_loop_fields(self, full):
        for fieldno in range(T.LOOP_FIELD_COUNT):
            sel = T.loop_selector(1, fieldno)
            full.write(sel, fieldno + 7)
            assert full.read(sel) == fieldno + 7

    def test_exit_record_roundtrip(self, full):
        sel = T.exit_selector(5, T.X_TARGET_PC)
        full.write(sel, 0x44)
        assert full.read(sel) == 0x44
        assert full.exits[5].target_pc == 0x44

    def test_entry_record_roundtrip(self, full):
        sel = T.entry_selector(2, T.N_ENTRY_PC)
        full.write(sel, 0x88)
        assert full.entries[2].entry_pc == 0x88

    def test_value_masked_to_32_bits(self, full):
        full.write(T.loop_selector(0, T.F_INITIAL), 1 << 35)
        assert full.read(T.loop_selector(0, T.F_INITIAL)) == 0

    def test_out_of_range_loop_rejected(self, lite):
        with pytest.raises(ZolcFaultError):
            lite.write(T.loop_selector(8, T.F_TRIPS), 1)

    def test_exit_records_absent_on_lite(self, lite):
        with pytest.raises(ZolcFaultError):
            lite.write(T.exit_selector(0, T.X_BRANCH_PC), 1)

    def test_uzolc_single_loop(self):
        tables = ZolcTables(UZOLC)
        tables.write(T.loop_selector(0, T.F_TRIPS), 5)
        with pytest.raises(ZolcFaultError):
            tables.write(T.loop_selector(1, T.F_TRIPS), 5)


class TestRecordFlags:
    def test_valid_flag(self, full):
        full.write(T.loop_selector(0, T.F_FLAGS), T.FLAG_VALID)
        assert full.loops[0].valid
        assert full.valid_loops() == [0]

    def test_cascade_flag(self, full):
        full.write(T.loop_selector(0, T.F_FLAGS),
                   T.FLAG_VALID | T.FLAG_CASCADE)
        assert full.loops[0].cascade

    def test_reset_clears(self, full):
        full.write(T.loop_selector(0, T.F_FLAGS), T.FLAG_VALID)
        full.reset()
        assert full.valid_loops() == []
        assert full.loops[0].trigger_pc == T.NO_TRIGGER


def _valid_loop(tables, loop_id, trips=4, trigger=0x40, parent=T.NO_PARENT,
                cascade=False):
    def base(f):
        return T.loop_selector(loop_id, f)

    tables.write(base(T.F_TRIPS), trips)
    tables.write(base(T.F_BODY_PC), 0x10)
    tables.write(base(T.F_TRIGGER_PC), trigger)
    tables.write(base(T.F_PARENT), parent)
    flags = T.FLAG_VALID | (T.FLAG_CASCADE if cascade else 0)
    tables.write(base(T.F_FLAGS), flags)


class TestValidation:
    def test_valid_single_loop_passes(self, full):
        _valid_loop(full, 0)
        full.validate()

    def test_zero_trips_rejected(self, full):
        _valid_loop(full, 0, trips=0)
        with pytest.raises(ZolcFaultError):
            full.validate()

    def test_cascade_without_parent_rejected(self, full):
        _valid_loop(full, 0, cascade=True)
        with pytest.raises(ZolcFaultError):
            full.validate()

    def test_invalid_parent_rejected(self, full):
        _valid_loop(full, 0, parent=3)
        with pytest.raises(ZolcFaultError):
            full.validate()

    def test_no_trigger_without_cascading_child_rejected(self, full):
        _valid_loop(full, 0, trigger=T.NO_TRIGGER)
        with pytest.raises(ZolcFaultError):
            full.validate()

    def test_cascaded_parent_without_trigger_passes(self, full):
        _valid_loop(full, 0, trigger=T.NO_TRIGGER)           # parent
        _valid_loop(full, 1, trigger=0x40, parent=0, cascade=True)
        full.validate()

    def test_exit_record_with_empty_mask_rejected(self, full):
        _valid_loop(full, 0)
        full.write(T.exit_selector(0, T.X_FLAGS), T.FLAG_VALID)
        with pytest.raises(ZolcFaultError):
            full.validate()
