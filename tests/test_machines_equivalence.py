"""Cross-machine integration: the central correctness claim.

For every benchmark and every machine configuration the *architectural
result* must be identical (the transforms only remove overhead), and
cycle counts must be ordered: ZOLClite never loses to XRhrdwil, which
never loses to XRdefault.
"""

import pytest

from repro.eval.machines import (
    ALL_MACHINES,
    M_UZOLC,
    M_ZOLC_FULL,
    M_ZOLC_LITE,
    XR_DEFAULT,
    XR_HRDWIL,
    machine_by_name,
)
from repro.eval.runner import run_kernel
from repro.workloads.suite import FIGURE2_BENCHMARKS, registry


@pytest.fixture(scope="module")
def reg():
    return registry()


@pytest.fixture(scope="module")
def measurements(reg):
    """Run all Figure 2 kernels on all five machines, once."""
    out = {}
    for name in FIGURE2_BENCHMARKS:
        kernel = reg.get(name)
        for machine in ALL_MACHINES:
            out[(name, machine.name)] = run_kernel(kernel, machine)
    return out


@pytest.mark.parametrize("name", FIGURE2_BENCHMARKS)
class TestPerKernel:
    def test_all_machines_verified(self, measurements, name):
        for machine in ALL_MACHINES:
            assert measurements[(name, machine.name)].verified

    def test_hrdwil_not_slower_than_default(self, measurements, name):
        assert measurements[(name, "XRhrdwil")].cycles \
            <= measurements[(name, "XRdefault")].cycles

    def test_zolclite_not_slower_than_default(self, measurements, name):
        assert measurements[(name, "ZOLClite")].cycles \
            < measurements[(name, "XRdefault")].cycles

    def test_zolclite_beats_uzolc_or_ties(self, measurements, name):
        assert measurements[(name, "ZOLClite")].cycles \
            <= measurements[(name, "uZOLC")].cycles

    def test_zolcfull_not_slower_than_lite(self, measurements, name):
        # On single-exit workloads full == lite; on multi-exit workloads
        # full can only help.
        assert measurements[(name, "ZOLCfull")].cycles \
            <= measurements[(name, "ZOLClite")].cycles

    def test_zolc_machines_execute_fewer_instructions(self, measurements,
                                                      name):
        assert measurements[(name, "ZOLClite")].instructions \
            < measurements[(name, "XRdefault")].instructions


class TestAggregate:
    def test_zolc_transforms_loops_everywhere(self, measurements):
        for name in FIGURE2_BENCHMARKS:
            assert measurements[(name, "ZOLClite")].transformed_loops >= 1

    def test_task_switches_happen(self, measurements):
        for name in FIGURE2_BENCHMARKS:
            assert measurements[(name, "ZOLClite")].zolc_task_switches > 0

    def test_init_overhead_is_small(self, measurements):
        # "The initialization of ZOLC presents only a very small cycle
        # overhead since it occurs outside of loop nests."
        for name in FIGURE2_BENCHMARKS:
            result = measurements[(name, "ZOLClite")]
            assert result.zolc_init_instructions / result.instructions < 0.05


class TestMachineLookup:
    def test_by_name(self):
        assert machine_by_name("xrdefault") is XR_DEFAULT
        assert machine_by_name("XRhrdwil") is XR_HRDWIL
        assert machine_by_name("zolclite") is M_ZOLC_LITE
        assert machine_by_name("uzolc") is M_UZOLC
        assert machine_by_name("ZOLCfull") is M_ZOLC_FULL

    def test_unknown(self):
        with pytest.raises(KeyError):
            machine_by_name("pentium")


class TestEarlyExitAblation:
    def test_full_beats_lite_on_early_exit_kernel(self, reg):
        kernel = reg.get("me_fss_early")
        lite = run_kernel(kernel, M_ZOLC_LITE)
        full = run_kernel(kernel, M_ZOLC_FULL)
        assert full.verified and lite.verified
        assert full.cycles < lite.cycles
        assert full.transformed_loops > lite.transformed_loops
