"""Unit tests for ZOLC configuration records."""

import pytest

from repro.core.config import (
    CANONICAL_CONFIGS,
    UZOLC,
    ZOLC_FULL,
    ZOLC_LITE,
    ZolcConfig,
    config_by_name,
)


class TestCanonicalConfigs:
    def test_paper_parameters_full(self):
        # "ZOLCfull refers to a ZOLC supporting 32 task switching entries,
        #  and 8-loop structure with up to 4 entries/exits per loop."
        assert ZOLC_FULL.max_task_entries == 32
        assert ZOLC_FULL.max_loops == 8
        assert ZOLC_FULL.entries_per_loop == 4
        assert ZOLC_FULL.multi_entry_exit

    def test_paper_parameters_lite(self):
        # "ZOLClite lacks support for multiple-entry/exit"
        assert ZOLC_LITE.max_loops == 8
        assert ZOLC_LITE.max_task_entries == 32
        assert not ZOLC_LITE.multi_entry_exit

    def test_paper_parameters_uzolc(self):
        # "uZOLC, is usable for single loops"
        assert UZOLC.max_loops == 1
        assert UZOLC.single_shot
        assert not UZOLC.has_task_lut

    def test_exit_record_counts(self):
        assert UZOLC.max_exit_records == 0
        assert ZOLC_LITE.max_exit_records == 0
        assert ZOLC_FULL.max_exit_records == 32

    def test_three_canonical_configs(self):
        assert len(CANONICAL_CONFIGS) == 3


class TestLookup:
    def test_by_name(self):
        assert config_by_name("ZOLCfull") is ZOLC_FULL
        assert config_by_name("zolclite") is ZOLC_LITE
        assert config_by_name("UZOLC") is UZOLC

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            config_by_name("ZOLCmega")


class TestValidation:
    def test_rejects_zero_loops(self):
        with pytest.raises(ValueError):
            ZolcConfig("bad", max_loops=0, max_task_entries=4,
                       entries_per_loop=1, multi_entry_exit=False)

    def test_rejects_lut_without_entries(self):
        with pytest.raises(ValueError):
            ZolcConfig("bad", max_loops=2, max_task_entries=0,
                       entries_per_loop=1, multi_entry_exit=False,
                       has_task_lut=True)

    def test_rejects_multi_records_without_support(self):
        with pytest.raises(ValueError):
            ZolcConfig("bad", max_loops=2, max_task_entries=8,
                       entries_per_loop=2, multi_entry_exit=False)

    def test_custom_config_allowed(self):
        config = ZolcConfig("mini", max_loops=2, max_task_entries=8,
                            entries_per_loop=1, multi_entry_exit=False)
        assert config.max_loops == 2
