"""Table-driven exhaustive branch-condition semantics."""

import pytest

from repro.cpu.datapath import execute
from repro.cpu.memory import Memory
from repro.cpu.state import CpuState
from repro.isa.instructions import Instruction

# (mnemonic, uses rt) -> python predicate over signed operands
PREDICATES = {
    "beq": (True, lambda a, b: a == b),
    "bne": (True, lambda a, b: a != b),
    "blez": (False, lambda a, b: a <= 0),
    "bgtz": (False, lambda a, b: a > 0),
    "bltz": (False, lambda a, b: a < 0),
    "bgez": (False, lambda a, b: a >= 0),
}

VALUES = [-(2**31), -7, -1, 0, 1, 7, 2**31 - 1]


@pytest.mark.parametrize("mnemonic", sorted(PREDICATES))
@pytest.mark.parametrize("a", VALUES)
@pytest.mark.parametrize("b", VALUES)
def test_branch_taken_matches_predicate(mnemonic, a, b):
    uses_rt, predicate = PREDICATES[mnemonic]
    state = CpuState(entry_point=0x100)
    memory = Memory(size=1024)
    state.regs["t0"] = a
    state.regs["t1"] = b
    inst = Instruction(mnemonic, rs=8, rt=9 if uses_rt else 0, imm=4)
    outcome = execute(inst, state, memory)
    expected = predicate(a, b)
    assert outcome.taken == expected
    if expected:
        assert outcome.next_pc == 0x100 + 4 + 16
    else:
        assert outcome.next_pc == 0x104
