"""End-to-end tests for multiple-entry loop support (ZOLCfull)."""

import pytest

from repro.asm import assemble
from repro.core.config import UZOLC, ZOLC_FULL, ZOLC_LITE
from repro.cpu.simulator import run_program
from repro.transform.zolc_rewrite import rewrite_for_zolc
from repro.workloads.kernels.synthetic import multi_entry_kernel


class TestBaseline:
    @pytest.mark.parametrize("side", [False, True])
    def test_untransformed_kernel_correct(self, side):
        kernel = multi_entry_kernel(use_side_entry=side)
        sim = run_program(assemble(kernel.source))
        kernel.check(sim)


class TestZolcFull:
    @pytest.mark.parametrize("side", [False, True])
    def test_transformed_kernel_correct(self, side):
        kernel = multi_entry_kernel(use_side_entry=side)
        result = rewrite_for_zolc(kernel.source, ZOLC_FULL)
        assert result.transformed_loop_count == 1
        assert len(result.specs[0].entries) == 1
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)

    def test_side_entry_event_counted(self):
        kernel = multi_entry_kernel(use_side_entry=True)
        result = rewrite_for_zolc(kernel.source, ZOLC_FULL)
        sim = result.make_simulator()
        sim.run()
        assert sim.zolc.entry_events >= 1

    def test_side_path_still_faster_than_baseline(self):
        kernel = multi_entry_kernel(use_side_entry=True)
        baseline = run_program(assemble(kernel.source))
        result = rewrite_for_zolc(kernel.source, ZOLC_FULL)
        sim = result.make_simulator()
        sim.run()
        assert sim.stats.cycles < baseline.stats.cycles

    def test_init_dominates_both_entries(self):
        # The initialization block must execute before the side-entry
        # jump: the controller must be armed when the jump lands.
        kernel = multi_entry_kernel(use_side_entry=True)
        result = rewrite_for_zolc(kernel.source, ZOLC_FULL)
        sim = result.make_simulator()
        sim.run()
        assert sim.zolc.arm_count == 1
        assert sim.zolc.task_switches > 0


class TestLiteAndUzolcRejection:
    @pytest.mark.parametrize("config", [ZOLC_LITE, UZOLC])
    def test_side_entry_loop_left_in_software(self, config):
        kernel = multi_entry_kernel(use_side_entry=True)
        result = rewrite_for_zolc(kernel.source, config)
        assert result.transformed_loop_count == 0
        assert any("side" in r.lower() or "entrie" in r.lower()
                   for r in result.plan.rejected.values())
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)
