"""Unit tests for natural-loop detection and the nesting forest."""

from repro.asm import assemble
from repro.cfg import build_cfg, find_loops

SINGLE = """
main:   li   t0, 4
loop:   addi t0, t0, -1
        bne  t0, zero, loop
        halt
"""

NESTED3 = """
main:   li   t0, 2
l0:     li   t1, 2
l1:     li   t2, 2
l2:     addi t2, t2, -1
        bne  t2, zero, l2
        addi t1, t1, -1
        bne  t1, zero, l1
        addi t0, t0, -1
        bne  t0, zero, l0
        halt
"""

SIBLINGS = """
main:   li   t0, 3
a:      addi t0, t0, -1
        bne  t0, zero, a
        li   t1, 3
b:      addi t1, t1, -1
        bne  t1, zero, b
        halt
"""

MULTI_EXIT = """
main:   li   t0, 8
loop:   addi t0, t0, -1
        beq  t0, t1, escape
        bne  t0, zero, loop
after:  halt
escape: halt
"""


class TestDetection:
    def test_single_loop_found(self):
        forest = find_loops(build_cfg(assemble(SINGLE)))
        assert len(forest.loops) == 1
        assert forest.loops[0].depth == 1

    def test_header_and_latch(self):
        cfg = build_cfg(assemble(SINGLE))
        forest = find_loops(cfg)
        loop = forest.loops[0]
        assert cfg.blocks[loop.header].start == 4
        assert loop.latches == [loop.header]  # single-block loop

    def test_three_level_nest(self):
        forest = find_loops(build_cfg(assemble(NESTED3)))
        assert len(forest.loops) == 3
        assert sorted(lp.depth for lp in forest.loops) == [1, 2, 3]

    def test_nest_parentage(self):
        forest = find_loops(build_cfg(assemble(NESTED3)))
        by_depth = {lp.depth: lp for lp in forest.loops}
        assert by_depth[3].parent == by_depth[2].id
        assert by_depth[2].parent == by_depth[1].id
        assert by_depth[1].parent is None

    def test_innermost_flag(self):
        forest = find_loops(build_cfg(assemble(NESTED3)))
        innermost = [lp for lp in forest.loops if lp.is_innermost()]
        assert len(innermost) == 1
        assert innermost[0].depth == 3

    def test_siblings_independent(self):
        forest = find_loops(build_cfg(assemble(SIBLINGS)))
        assert len(forest.loops) == 2
        assert all(lp.parent is None for lp in forest.loops)

    def test_loops_ordered_by_address(self):
        cfg = build_cfg(assemble(SIBLINGS))
        forest = find_loops(cfg)
        headers = [cfg.blocks[lp.header].start for lp in forest.loops]
        assert headers == sorted(headers)

    def test_no_loops_in_straight_line(self):
        forest = find_loops(build_cfg(assemble("nop\nnop\nhalt\n")))
        assert forest.loops == []
        assert forest.max_depth() == 0


class TestQueries:
    def test_innermost_loop_of_block(self):
        cfg = build_cfg(assemble(NESTED3))
        forest = find_loops(cfg)
        inner_block = cfg.block_id_at(12)  # the l2 header block
        loop = forest.innermost_loop_of(inner_block)
        assert loop is not None and loop.depth == 3

    def test_loop_of_address(self):
        cfg = build_cfg(assemble(NESTED3))
        forest = find_loops(cfg)
        assert forest.loop_of_address(12).depth == 3
        assert forest.loop_of_address(0) is None

    def test_roots(self):
        forest = find_loops(build_cfg(assemble(NESTED3)))
        assert len(forest.roots()) == 1
        assert forest.roots()[0].depth == 1

    def test_descendants_and_ancestors(self):
        forest = find_loops(build_cfg(assemble(NESTED3)))
        root = forest.roots()[0]
        descendants = forest.descendants(root)
        assert len(descendants) == 2
        deepest = max(forest.loops, key=lambda lp: lp.depth)
        ancestors = forest.ancestors(deepest)
        assert [a.depth for a in ancestors] == [2, 1]

    def test_max_depth(self):
        assert find_loops(build_cfg(assemble(NESTED3))).max_depth() == 3


class TestExits:
    def test_single_exit(self):
        forest = find_loops(build_cfg(assemble(SINGLE)))
        loop = forest.loops[0]
        assert len(loop.exit_edges) == 1
        assert not loop.is_multi_exit()

    def test_multi_exit_detected(self):
        forest = find_loops(build_cfg(assemble(MULTI_EXIT)))
        loop = forest.loops[0]
        assert loop.is_multi_exit()
        assert len(loop.exit_targets()) == 2

    def test_contains_address(self):
        cfg = build_cfg(assemble(SINGLE))
        forest = find_loops(cfg)
        loop = forest.loops[0]
        assert forest.contains_address(loop, 4)
        assert not forest.contains_address(loop, 0)


class TestIrreducible:
    def test_side_entry_recorded_as_irreducible(self):
        source = """
main:   bne  t0, zero, side
        li   t1, 3
loop:   addi t1, t1, -1
        nop
body:   bne  t1, zero, loop
        halt
side:   j    body
"""
        forest = find_loops(build_cfg(assemble(source)))
        # The jump into the loop body makes the back edge irreducible.
        assert forest.irreducible_edges
