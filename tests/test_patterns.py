"""Unit tests for loop-overhead pattern recognition."""

import pytest

from repro.asm import assemble
from repro.cfg import build_cfg, find_loops
from repro.transform.patterns import (
    PatternError,
    match_all_loops,
    match_loop,
)


def match_first(source):
    program = assemble(source)
    cfg = build_cfg(program)
    forest = find_loops(cfg)
    assert forest.loops, "test source must contain a loop"
    return match_loop(program, cfg, forest, forest.loops[0]), program


class TestDownCount:
    SOURCE = """
main:   li   t0, 16
loop:   add  s0, s0, t0
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
"""

    def test_style_and_registers(self):
        pattern, program = match_first(self.SOURCE)
        assert pattern.style == "down_count"
        assert pattern.index_reg == 8
        assert pattern.step == -1

    def test_trips_from_imm_init(self):
        pattern, _ = match_first(self.SOURCE)
        assert pattern.trips.kind == "imm"
        assert pattern.trips.value == 16
        assert pattern.initial.value == 16

    def test_init_deletable(self):
        pattern, _ = match_first(self.SOURCE)
        assert pattern.init_indices == [0]
        assert not pattern.initial_from_self

    def test_deleted_indices(self):
        pattern, _ = match_first(self.SOURCE)
        assert pattern.deleted_indices == frozenset({0, 2, 3})

    def test_down_count_by_2(self):
        source = self.SOURCE.replace("addi t0, t0, -1", "addi t0, t0, -2")
        pattern, _ = match_first(source)
        assert pattern.trips.value == 8

    def test_non_multiple_initial_rejected(self):
        source = """
main:   li   t0, 7
loop:   add  s0, s0, t0
        addi t0, t0, -2
        bne  t0, zero, loop
        halt
"""
        with pytest.raises(PatternError):
            match_first(source)

    def test_register_initial(self):
        source = """
main:   move t0, s7
loop:   add  s0, s0, t0
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
"""
        pattern, _ = match_first(source)
        assert pattern.trips.kind == "reg"
        assert pattern.trips.value == 23  # s7

    def test_register_initial_needs_unit_step(self):
        source = """
main:   move t0, s7
loop:   add  s0, s0, t0
        addi t0, t0, -2
        bne  t0, zero, loop
        halt
"""
        with pytest.raises(PatternError):
            match_first(source)


class TestUpCountSlt:
    SOURCE = """
main:   li   t0, 0
loop:   add  s0, s0, t0
        addi t0, t0, 1
        slti at, t0, 10
        bne  at, zero, loop
        halt
"""

    def test_style(self):
        pattern, _ = match_first(self.SOURCE)
        assert pattern.style == "up_count_slt"
        assert pattern.trips.value == 10
        assert pattern.compare_index is not None

    def test_nonzero_initial(self):
        source = self.SOURCE.replace("li   t0, 0", "li   t0, 4")
        pattern, _ = match_first(source)
        assert pattern.trips.value == 6

    def test_step_2_ceiling(self):
        source = self.SOURCE.replace("addi t0, t0, 1", "addi t0, t0, 2") \
                            .replace("slti at, t0, 10", "slti at, t0, 9")
        pattern, _ = match_first(source)
        assert pattern.trips.value == 5  # ceil(9/2)

    def test_register_bound(self):
        source = self.SOURCE.replace("slti at, t0, 10", "slt  at, t0, s6")
        pattern, _ = match_first(source)
        assert pattern.trips.kind == "reg"
        assert pattern.trips.value == 22  # s6

    def test_register_bound_needs_zero_initial(self):
        source = self.SOURCE.replace("slti at, t0, 10", "slt  at, t0, s6") \
                            .replace("li   t0, 0", "li   t0, 2")
        with pytest.raises(PatternError):
            match_first(source)

    def test_temp_live_after_latch_rejected(self):
        source = """
main:   li   t0, 0
loop:   add  s0, s0, t0
        addi t0, t0, 1
        slti at, t0, 10
        bne  at, zero, loop
        add  s1, s1, at
        halt
"""
        with pytest.raises(PatternError):
            match_first(source)

    def test_bound_written_in_loop_rejected(self):
        source = """
main:   li   t0, 0
loop:   addi s6, s6, 1
        addi t0, t0, 1
        slt  at, t0, s6
        bne  at, zero, loop
        halt
"""
        with pytest.raises(PatternError):
            match_first(source)


class TestUpCountNe:
    SOURCE = """
main:   li   t0, 0
        li   s6, 24
loop:   add  s0, s0, t0
        addi t0, t0, 1
        bne  t0, s6, loop
        halt
"""

    def test_style(self):
        pattern, _ = match_first(self.SOURCE)
        assert pattern.style == "up_count_ne"
        assert pattern.trips.kind == "reg"


class TestRejections:
    def test_two_latches(self):
        source = """
main:   li   t0, 8
loop:   addi t0, t0, -1
        beq  t0, s0, back
        bne  t0, zero, loop
        halt
back:   bne  t0, zero, loop
        halt
"""
        program = assemble(source)
        cfg = build_cfg(program)
        forest = find_loops(cfg)
        with pytest.raises(PatternError, match="latches"):
            match_loop(program, cfg, forest, forest.loops[0])

    def test_call_in_loop(self):
        source = """
main:   li   t0, 8
loop:   jal  helper
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
helper: jr   ra
"""
        with pytest.raises(PatternError, match="call"):
            match_first(source)

    def test_beq_latch_rejected(self):
        source = """
main:   li   t0, 8
loop:   addi t0, t0, -1
        beq  t0, zero, out
        j    loop
out:    halt
"""
        program = assemble(source)
        cfg = build_cfg(program)
        forest = find_loops(cfg)
        with pytest.raises(PatternError):
            match_loop(program, cfg, forest, forest.loops[0])

    def test_empty_body_rejected(self):
        source = """
main:   li   t0, 8
loop:   addi t0, t0, -1
        bne  t0, zero, loop
        halt
"""
        with pytest.raises(PatternError, match="empty"):
            match_first(source)

    def test_clean_gap_violation(self):
        source = """
main:   li   t0, 8
loop:   add  s0, s0, t0
        addi t0, t0, -1
        add  s1, t0, t0
        bne  t0, zero, loop
        halt
"""
        with pytest.raises(PatternError):
            match_first(source)

    def test_outside_jump_to_trigger_rejected(self):
        source = """
main:   beq  s0, zero, after
        li   t0, 8
loop:   add  s0, s0, t0
        addi t0, t0, -1
        bne  t0, zero, loop
after:  halt
"""
        with pytest.raises(PatternError, match="trigger"):
            match_first(source)


class TestExitBranches:
    SOURCE = """
main:   li   t0, 8
loop:   add  s0, s0, t0
        beq  s0, s1, escape
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
escape: halt
"""

    def test_exit_branch_found(self):
        pattern, program = match_first(self.SOURCE)
        assert len(pattern.exit_branches) == 1
        exit_branch = pattern.exit_branches[0]
        assert exit_branch.target_address == program.symbols["escape"]
        assert exit_branch.exited_loop_ids == [0]

    def test_two_level_exit(self):
        source = """
main:   li   t0, 4
outer:  li   t1, 4
inner:  add  s0, s0, t1
        beq  s0, s1, escape
        addi t1, t1, -1
        bne  t1, zero, inner
        addi t0, t0, -1
        bne  t0, zero, outer
        halt
escape: halt
"""
        program = assemble(source)
        cfg = build_cfg(program)
        forest = find_loops(cfg)
        patterns, failures = match_all_loops(program, cfg, forest)
        inner = next(p for p in patterns.values() if p.loop.depth == 2)
        assert len(inner.exit_branches) == 1
        assert sorted(inner.exit_branches[0].exited_loop_ids) == [0, 1]


class TestMatchAll:
    def test_mixed_results(self):
        source = """
main:   li   t0, 4
good:   add  s0, s0, t0
        addi t0, t0, -1
        bne  t0, zero, good
        li   t1, 7
bad:    add  s0, s0, t1
        addi t1, t1, -2
        bne  t1, zero, bad
        halt
"""
        program = assemble(source)
        cfg = build_cfg(program)
        forest = find_loops(cfg)
        patterns, failures = match_all_loops(program, cfg, forest)
        assert len(patterns) == 1
        assert len(failures) == 1
