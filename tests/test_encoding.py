"""Unit + property tests for binary encoding/decoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instructions import (
    ALL_MNEMONICS,
    Format,
    Instruction,
    SPEC_BY_MNEMONIC,
)


class TestEncodeBasics:
    def test_add(self):
        word = encode(Instruction("add", rd=3, rs=1, rt=2))
        assert word == (1 << 21) | (2 << 16) | (3 << 11) | 0x20

    def test_addi_negative_imm(self):
        word = encode(Instruction("addi", rt=8, rs=8, imm=-1))
        assert word & 0xFFFF == 0xFFFF

    def test_lui_unsigned_imm(self):
        word = encode(Instruction("lui", rt=1, imm=0xEDB8))
        assert word & 0xFFFF == 0xEDB8

    def test_j_target(self):
        word = encode(Instruction("j", target=0x12345))
        assert word & 0x3FFFFFF == 0x12345

    def test_halt(self):
        assert (encode(Instruction("halt")) >> 26) == 0x3F


class TestEncodeErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode(Instruction("frobnicate"))

    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("add", rd=32, rs=0, rt=0))

    def test_signed_imm_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rt=1, rs=1, imm=40000))

    def test_unsigned_imm_rejects_negative(self):
        with pytest.raises(EncodingError):
            encode(Instruction("ori", rt=1, rs=1, imm=-1))

    def test_shamt_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("sll", rd=1, rt=1, shamt=32))

    def test_target_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction("j", target=1 << 26))


class TestDecodeBasics:
    def test_decode_add(self):
        inst = decode(encode(Instruction("add", rd=3, rs=1, rt=2)))
        assert (inst.mnemonic, inst.rd, inst.rs, inst.rt) == ("add", 3, 1, 2)

    def test_decode_sign_extends_imm(self):
        inst = decode(encode(Instruction("beq", rs=1, rt=2, imm=-5)))
        assert inst.imm == -5

    def test_decode_regimm(self):
        inst = decode(encode(Instruction("bltz", rs=7, imm=3)))
        assert inst.mnemonic == "bltz"
        assert inst.rs == 7
        assert inst.imm == 3

    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode(0x3A << 26)

    def test_unknown_funct(self):
        with pytest.raises(EncodingError):
            decode(0x3F)  # SPECIAL with funct 0x3F

    def test_unknown_regimm_selector(self):
        with pytest.raises(EncodingError):
            decode((0x01 << 26) | (0x1F << 16))

    def test_rejects_oversized_word(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)


def _instruction_strategy():
    """Random well-formed instructions for the round-trip property."""
    regs = st.integers(min_value=0, max_value=31)
    shamts = st.integers(min_value=0, max_value=31)
    simm = st.integers(min_value=-(2**15), max_value=2**15 - 1)
    uimm = st.integers(min_value=0, max_value=2**16 - 1)
    targets = st.integers(min_value=0, max_value=2**26 - 1)

    def build(mnemonic, rs, rt, rd, shamt, s_imm, u_imm, target):
        spec = SPEC_BY_MNEMONIC[mnemonic]
        inst = Instruction(mnemonic)
        if spec.fmt is Format.R:
            inst.rs, inst.rt, inst.rd, inst.shamt = rs, rt, rd, shamt
        elif spec.fmt is Format.J:
            inst.target = target
        else:
            inst.rs = rs
            if spec.regimm is None:
                inst.rt = rt
            inst.imm = u_imm if spec.unsigned_imm else s_imm
        return inst

    return st.builds(build, st.sampled_from(ALL_MNEMONICS), regs, regs, regs,
                     shamts, simm, uimm, targets)


class TestRoundTrip:
    @given(_instruction_strategy())
    def test_encode_decode_identity(self, inst):
        decoded = decode(encode(inst))
        assert decoded.mnemonic == inst.mnemonic
        spec = SPEC_BY_MNEMONIC[inst.mnemonic]
        if spec.fmt is Format.R:
            assert (decoded.rs, decoded.rt, decoded.rd, decoded.shamt) == \
                (inst.rs, inst.rt, inst.rd, inst.shamt)
        elif spec.fmt is Format.J:
            assert decoded.target == inst.target
        else:
            assert decoded.rs == inst.rs
            assert decoded.imm == inst.imm
            if spec.regimm is None:
                assert decoded.rt == inst.rt

    @given(_instruction_strategy())
    def test_encoded_word_is_32_bit(self, inst):
        assert 0 <= encode(inst) < 2**32
