"""Tests for the synthetic workload generators."""

import pytest

from repro.asm import assemble
from repro.core.config import ZOLC_LITE
from repro.cpu.simulator import run_program
from repro.transform.zolc_rewrite import rewrite_for_zolc
from repro.workloads.kernels.synthetic import multi_entry_kernel, nest_kernel


class TestNestKernel:
    @pytest.mark.parametrize("depth", [1, 2, 3, 4, 6, 8])
    def test_baseline_checksum(self, depth):
        kernel = nest_kernel(depth=depth, trips=2, body_ops=3)
        sim = run_program(assemble(kernel.source))
        kernel.check(sim)

    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_zolc_checksum(self, depth):
        kernel = nest_kernel(depth=depth, trips=3, body_ops=2)
        result = rewrite_for_zolc(kernel.source, ZOLC_LITE)
        assert result.transformed_loop_count == depth
        sim = result.make_simulator()
        sim.run()
        kernel.check(sim)

    def test_expected_loops_metadata(self):
        kernel = nest_kernel(depth=3, trips=2, body_ops=1)
        from repro.cfg import build_cfg, find_loops
        forest = find_loops(build_cfg(assemble(kernel.source)))
        assert len(forest.loops) == kernel.expected_loops == 3

    def test_checksum_formula(self):
        # depth 2, trips 3, body 4: 9 iterations x (1+2+3+4)
        kernel = nest_kernel(depth=2, trips=3, body_ops=4)
        sim = run_program(assemble(kernel.source))
        out = sim.memory.load_word(sim.program.symbols["out"])
        assert out == 9 * 10

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            nest_kernel(depth=0, trips=2, body_ops=1)
        with pytest.raises(ValueError):
            nest_kernel(depth=9, trips=2, body_ops=1)

    def test_trips_validation(self):
        with pytest.raises(ValueError):
            nest_kernel(depth=1, trips=0, body_ops=1)
        with pytest.raises(ValueError):
            nest_kernel(depth=1, trips=2, body_ops=0)

    def test_gain_grows_with_depth(self):
        """Deeper nests leave more overhead for the ZOLC to remove."""
        improvements = []
        for depth in (1, 2, 3):
            kernel = nest_kernel(depth=depth, trips=4, body_ops=2)
            base = run_program(assemble(kernel.source)).stats.cycles
            sim = rewrite_for_zolc(kernel.source, ZOLC_LITE).make_simulator()
            sim.run()
            improvements.append(1 - sim.stats.cycles / base)
        assert improvements[0] < improvements[1] < improvements[2]


class TestMultiEntryKernel:
    def test_flag_controls_entry_path(self):
        main = multi_entry_kernel(use_side_entry=False)
        side = multi_entry_kernel(use_side_entry=True)
        sim_main = run_program(assemble(main.source))
        sim_side = run_program(assemble(side.source))
        out_main = sim_main.memory.load_word(sim_main.program.symbols["out"])
        out_side = sim_side.memory.load_word(sim_side.program.symbols["out"])
        assert out_main == sum(range(12))
        assert out_side == sum(range(5, 12))
