"""Unit tests for basic-block / CFG construction."""

from repro.asm import assemble
from repro.cfg import build_cfg

SIMPLE_LOOP = """
main:   li   t0, 4
loop:   addi t0, t0, -1
        bne  t0, zero, loop
        halt
"""

DIAMOND = """
main:   beq  t0, zero, right
left:   addi t1, zero, 1
        j    join
right:  addi t1, zero, 2
join:   halt
"""


class TestBlocks:
    def test_simple_loop_blocks(self):
        cfg = build_cfg(assemble(SIMPLE_LOOP))
        # main / loop / halt
        assert len(cfg.blocks) == 3

    def test_block_boundaries_at_targets(self):
        cfg = build_cfg(assemble(SIMPLE_LOOP))
        starts = sorted(b.start for b in cfg.blocks.values())
        assert starts == [0, 4, 12]

    def test_block_at_address(self):
        cfg = build_cfg(assemble(SIMPLE_LOOP))
        assert cfg.block_at(8).start == 4

    def test_terminator(self):
        cfg = build_cfg(assemble(SIMPLE_LOOP))
        assert cfg.block_at(4).terminator.mnemonic == "bne"

    def test_end_address(self):
        cfg = build_cfg(assemble(SIMPLE_LOOP))
        block = cfg.block_at(4)
        assert block.end == 8
        assert list(block.addresses()) == [4, 8]


class TestEdges:
    def test_loop_edges(self):
        cfg = build_cfg(assemble(SIMPLE_LOOP))
        loop_block = cfg.block_at(4)
        assert sorted(loop_block.successors) == sorted(
            [loop_block.id, cfg.block_at(12).id])

    def test_diamond_edges(self):
        cfg = build_cfg(assemble(DIAMOND))
        entry = cfg.block_at(0)
        left = cfg.block_at(4)
        right = cfg.block_at(12)
        join = cfg.block_at(16)
        assert set(entry.successors) == {left.id, right.id}
        assert left.successors == [join.id]
        assert right.successors == [join.id]
        assert set(join.predecessors) == {left.id, right.id}

    def test_halt_has_no_successors(self):
        cfg = build_cfg(assemble(SIMPLE_LOOP))
        assert cfg.block_at(12).successors == []

    def test_jr_has_no_static_successors(self):
        cfg = build_cfg(assemble("jr ra\nhalt\n"))
        assert cfg.block_at(0).successors == []

    def test_jal_falls_through(self):
        cfg = build_cfg(assemble("jal sub\nhalt\nsub: jr ra\n"))
        entry = cfg.block_at(0)
        assert cfg.block_at(4).id in entry.successors


class TestTraversals:
    def test_reachable_ids(self):
        cfg = build_cfg(assemble(DIAMOND))
        assert len(cfg.reachable_ids()) == 4

    def test_unreachable_excluded(self):
        cfg = build_cfg(assemble("j end\ndead: nop\nend: halt\n"))
        reachable = cfg.reachable_ids()
        dead_id = cfg.block_at(4).id
        assert dead_id not in reachable

    def test_reverse_postorder_entry_first(self):
        cfg = build_cfg(assemble(DIAMOND))
        rpo = cfg.reverse_postorder()
        assert rpo[0] == cfg.entry_id

    def test_reverse_postorder_respects_dependencies(self):
        cfg = build_cfg(assemble(DIAMOND))
        rpo = cfg.reverse_postorder()
        join = cfg.block_at(16).id
        left = cfg.block_at(4).id
        assert rpo.index(left) < rpo.index(join)

    def test_to_networkx(self):
        graph = build_cfg(assemble(DIAMOND)).to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4


class TestEdgeCases:
    def test_empty_program_rejected(self):
        import pytest as _pytest
        from repro.asm.assembler import Program
        with _pytest.raises(ValueError):
            build_cfg(Program(instructions=[]))

    def test_entry_at_main(self):
        cfg = build_cfg(assemble("nop\nmain: halt\n"))
        assert cfg.blocks[cfg.entry_id].start == 4
