"""Task extraction over the real benchmark suite.

Ties the paper's hardware sizing to the workloads: ZOLClite provides
"32 task switching entries" and an "8-loop structure"; every benchmark
in the suite must fit those budgets, and the task decomposition must
tile each program exactly.
"""

import pytest

from repro.asm import assemble
from repro.cfg import build_cfg, extract_tasks, find_loops
from repro.core.config import ZOLC_LITE
from repro.workloads.suite import FIGURE2_BENCHMARKS, registry


@pytest.fixture(scope="module")
def structures():
    out = {}
    for name in FIGURE2_BENCHMARKS:
        kernel = registry().get(name)
        program = assemble(kernel.source)
        cfg = build_cfg(program)
        forest = find_loops(cfg)
        out[name] = (program, cfg, forest, extract_tasks(cfg, forest))
    return out


@pytest.mark.parametrize("name", FIGURE2_BENCHMARKS)
class TestTaskTiling:
    def test_tasks_tile_the_program(self, structures, name):
        program, _, _, graph = structures[name]
        covered = sum(t.size_instructions for t in graph.tasks)
        assert covered == len(program.instructions)

    def test_tasks_are_disjoint_and_ordered(self, structures, name):
        _, _, _, graph = structures[name]
        previous_end = None
        for task in graph.tasks:
            assert task.start <= task.end
            if previous_end is not None:
                assert task.start == previous_end + 4
            previous_end = task.end

    def test_every_loop_has_a_task(self, structures, name):
        _, _, forest, graph = structures[name]
        for loop in forest.loops:
            assert graph.tasks_of_loop(loop.id), \
                f"loop {loop.id} of {name} has no task"


@pytest.mark.parametrize("name", FIGURE2_BENCHMARKS)
class TestPaperCapacities:
    def test_fits_eight_loop_structure(self, structures, name):
        _, _, forest, _ = structures[name]
        assert len(forest.loops) <= ZOLC_LITE.max_loops

    def test_fits_32_task_entries(self, structures, name):
        # The LUT sizing of ZOLClite/full covers the whole suite — the
        # paper's configuration choice made checkable.
        _, _, _, graph = structures[name]
        assert graph.entry_count <= ZOLC_LITE.max_task_entries

    def test_nesting_depth_within_suite_expectations(self, structures, name):
        _, _, forest, _ = structures[name]
        assert 1 <= forest.max_depth() <= 4
