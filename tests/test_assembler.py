"""Unit tests for the two-pass assembler."""

import pytest

from repro.asm.assembler import DATA_BASE, TEXT_BASE, assemble
from repro.asm.errors import AsmError


class TestLayout:
    def test_sequential_addresses(self):
        program = assemble("nop\nnop\nnop\n")
        assert [i.address for i in program.instructions] == [0, 4, 8]

    def test_text_base_applied(self):
        program = assemble("nop\n", text_base=0x400)
        assert program.instructions[0].address == 0x400

    def test_entry_point_defaults_to_text_base(self):
        assert assemble("nop\n").entry_point() == TEXT_BASE

    def test_entry_point_uses_main(self):
        program = assemble("nop\nmain: nop\n")
        assert program.entry_point() == 4

    def test_by_address_lookup(self):
        program = assemble("nop\nadd t0, t1, t2\n")
        assert program.by_address[4].mnemonic == "add"

    def test_text_end(self):
        assert assemble("nop\nnop\n").text_end == 8


class TestSymbols:
    def test_label_address(self):
        program = assemble("nop\nloop: nop\n")
        assert program.symbols["loop"] == 4

    def test_data_label_address(self):
        program = assemble(".data\nx: .word 7\ny: .word 8\n.text\nnop\n")
        assert program.symbols["x"] == DATA_BASE
        assert program.symbols["y"] == DATA_BASE + 4

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            assemble("x: nop\nx: nop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AsmError):
            assemble("j nowhere\n")

    def test_equ_usable_as_immediate(self):
        program = assemble(".equ N, 12\naddi t0, zero, N\n")
        assert program.instructions[0].imm == 12

    def test_label_at(self):
        program = assemble("nop\nspot: nop\n")
        assert program.label_at(4) == "spot"
        assert program.label_at(0) is None


class TestBranches:
    def test_backward_branch_offset(self):
        program = assemble("loop: nop\nbne t0, zero, loop\n")
        branch = program.instructions[1]
        assert branch.imm == -2  # target 0, pc+4 = 8, delta -8 bytes
        assert branch.branch_target_address() == 0

    def test_forward_branch_offset(self):
        program = assemble("beq t0, zero, skip\nnop\nskip: nop\n")
        assert program.instructions[0].branch_target_address() == 8

    def test_jump_target_encoding(self):
        program = assemble("j end\nnop\nend: halt\n")
        assert program.instructions[0].target == 2  # byte 8 / 4

    def test_branch_out_of_range(self):
        body = "nop\n" * 40000
        with pytest.raises(AsmError):
            assemble(f"loop: {body}bne t0, zero, loop\n")


class TestMemoryOperands:
    def test_offset_and_register(self):
        program = assemble("lw t0, 8(sp)\n")
        inst = program.instructions[0]
        assert inst.imm == 8
        assert inst.rs == 29

    def test_missing_offset_defaults_zero(self):
        assert assemble("lw t0, (sp)\n").instructions[0].imm == 0

    def test_negative_offset(self):
        assert assemble("lw t0, -4(sp)\n").instructions[0].imm == -4

    def test_symbolic_offset(self):
        program = assemble(".equ OFF, 16\nlw t0, OFF(sp)\n")
        assert program.instructions[0].imm == 16

    def test_bad_mem_syntax(self):
        with pytest.raises(AsmError):
            assemble("lw t0, sp\n")

    def test_oversized_offset(self):
        with pytest.raises(AsmError):
            assemble("lw t0, 70000(sp)\n")


class TestRelocations:
    def test_hi_lo_split(self):
        program = assemble(".data\nx: .word 1\n.text\nla t0, x\n")
        lui, ori = program.instructions
        address = program.symbols["x"]
        assert lui.imm == (address >> 16) & 0xFFFF
        assert ori.imm == address & 0xFFFF

    def test_lo_of_text_symbol(self):
        program = assemble("nop\nspot: nop\nori t0, zero, %lo(spot)\n")
        assert program.instructions[2].imm == 4


class TestDataEmission:
    def test_word_little_endian(self):
        program = assemble(".data\nx: .word 0x11223344\n.text\nnop\n")
        assert bytes(program.data[:4]) == bytes([0x44, 0x33, 0x22, 0x11])

    def test_negative_word(self):
        program = assemble(".data\nx: .word -1\n.text\nnop\n")
        assert bytes(program.data[:4]) == b"\xff\xff\xff\xff"

    def test_half_and_byte(self):
        program = assemble(".data\nx: .half 0x1234\ny: .byte 7\n.text\nnop\n")
        assert bytes(program.data[:3]) == bytes([0x34, 0x12, 7])

    def test_space_zeroed(self):
        program = assemble(".data\nx: .space 8\n.text\nnop\n")
        assert bytes(program.data) == bytes(8)

    def test_align(self):
        program = assemble(
            ".data\na: .byte 1\n.align 2\nb: .word 5\n.text\nnop\n")
        assert program.symbols["b"] == DATA_BASE + 4

    def test_word_can_hold_symbol(self):
        program = assemble(".data\nx: .word 1\nptr: .word x\n.text\nnop\n")
        stored = int.from_bytes(bytes(program.data[4:8]), "little")
        assert stored == program.symbols["x"]

    def test_out_of_range_byte(self):
        with pytest.raises(AsmError):
            assemble(".data\nx: .byte 300\n.text\nnop\n")


class TestWords:
    def test_words_roundtrip_through_encoder(self):
        program = assemble("add t0, t1, t2\nlw s0, 4(sp)\nhalt\n")
        words = program.words()
        assert len(words) == 3
        assert all(0 <= w < 2**32 for w in words)
