"""The seeded corpus API: determinism, families, names, integration.

The contract under test is :mod:`repro.synth.corpus`: the same
``(family, seed, index)`` triplet produces the same kernel anywhere
(that is what lets plans, workers and regression manifests address
corpus members by name), families bias the kernel space the way their
descriptions claim, and the workload registry resolves ``synth:``
names without polluting the curated suite.
"""

import json

import pytest

from repro.experiments import ExperimentSpec, RunConfig, run_experiment
from repro.eval.machines import machine_by_name
from repro.synth import (
    FAMILIES,
    FAMILY_NAMES,
    CorpusSpec,
    emit_corpus,
    generate,
    generate_kernel,
    is_synth_name,
    kernel_name,
    parse_kernel_name,
    parse_selector,
)
from repro.workloads.suite import expand_kernel_selectors, registry


class TestDeterminism:
    def test_same_triplet_is_bit_identical(self):
        a = generate_kernel("baseline", 7, 3)
        b = generate_kernel("baseline", 7, 3)
        assert a.source == b.source
        assert a.machine == b.machine
        assert a.pipeline == b.pipeline
        assert a == b

    def test_random_access_matches_enumeration(self):
        corpus = generate(CorpusSpec(family="branchy", seed=1, count=5))
        assert corpus[4] == generate_kernel("branchy", 1, 4)

    def test_indices_and_seeds_vary_the_stream(self):
        base = generate_kernel("baseline", 0, 0)
        assert generate_kernel("baseline", 0, 1).source != base.source
        assert generate_kernel("baseline", 1, 0).source != base.source

    def test_provenance_pins_the_source_digest(self):
        import hashlib

        kernel = generate_kernel("subword", 2, 2)
        digest = hashlib.sha256(kernel.source.encode()).hexdigest()
        assert kernel.provenance["source_sha256"] == digest
        assert kernel.provenance["family"] == "subword"
        assert kernel.provenance["knobs"] == kernel.knobs.to_dict()


class TestFamilies:
    @pytest.mark.parametrize("family_name", FAMILY_NAMES)
    def test_every_family_generates_halting_kernels(self, family_name):
        kernel = generate_kernel(family_name, 0, 0)
        prepared = kernel.machine.prepare(kernel.source)
        sim = prepared.make_simulator(pipeline=kernel.pipeline)
        sim.run(max_steps=200_000, engine="step")
        assert sim.state.halted

    def test_rearm_storm_binds_controller_machines(self):
        pool = FAMILIES["rearm_storm"].machine_pool
        assert all(machine_by_name(name).kind == "zolc" for name in pool)
        for index in range(8):
            kernel = generate_kernel("rearm_storm", 0, index)
            assert kernel.machine.name in pool

    def test_family_knob_presets_reach_the_generator(self):
        kernel = generate_kernel("deep_nest", 0, 0)
        assert kernel.knobs == FAMILIES["deep_nest"].knobs
        assert kernel.knobs.min_depth == 3


class TestNamesAndSelectors:
    def test_kernel_name_roundtrip(self):
        name = kernel_name("branchy", 4, 9)
        assert name == "synth:branchy:4:9"
        assert parse_kernel_name(name) == ("branchy", 4, 9)
        assert is_synth_name(name) and not is_synth_name("vec_sum")

    def test_selector_expands_to_member_names(self):
        spec = parse_selector("synth:baseline:2:3")
        assert spec == CorpusSpec(family="baseline", seed=2, count=3)
        assert spec.kernel_names() == [
            "synth:baseline:2:0", "synth:baseline:2:1", "synth:baseline:2:2"]
        assert spec.selector == "synth:baseline:2:3"

    @pytest.mark.parametrize("bad", [
        "synth:baseline:2",            # wrong arity
        "synth:baseline:2:3:4",        # wrong arity
        "synth:baseline:x:3",          # non-integer seed
    ])
    def test_malformed_selectors_raise(self, bad):
        with pytest.raises(ValueError, match="bad synth"):
            parse_selector(bad)

    def test_unknown_family_raises_with_known_list(self):
        with pytest.raises(KeyError, match="known:"):
            parse_selector("synth:nope:0:1")


class TestRegistryIntegration:
    def test_registry_resolves_synth_names_lazily(self):
        reg = registry()
        kernel = reg.get("synth:baseline:0:0")
        assert kernel.category == "synthetic"
        assert json.loads(kernel.notes)["family"] == "baseline"
        # cached: the same object comes back
        assert reg.get("synth:baseline:0:0") is kernel

    def test_synth_members_do_not_pollute_the_suite(self):
        reg = registry()
        reg.get("synth:baseline:0:1")
        assert not any(is_synth_name(name) for name in reg.names())

    def test_expand_kernel_selectors_mixes_grammars(self):
        names = expand_kernel_selectors(["vec_sum", "synth:branchy:0:2"])
        assert names == ["vec_sum", "synth:branchy:0:0", "synth:branchy:0:1"]

    def test_expansion_deduplicates_preserving_order(self):
        names = expand_kernel_selectors(
            ["synth:branchy:0:2", "synth:branchy:0:1"])
        assert names == ["synth:branchy:0:0", "synth:branchy:0:1"]


class TestEmit:
    def test_emit_writes_sources_and_manifest(self, tmp_path):
        spec = CorpusSpec(family="irregular_stride", seed=3, count=2)
        manifest = emit_corpus(spec, tmp_path)
        on_disk = json.loads((tmp_path / "manifest.json").read_text())
        assert on_disk == manifest
        assert manifest["selector"] == "synth:irregular_stride:3:2"
        assert len(manifest["kernels"]) == 2
        for member, kernel in zip(manifest["kernels"], generate(spec)):
            assert member["name"] == kernel.name
            assert (tmp_path / member["file"]).read_text() == kernel.source


class TestPlanEndToEnd:
    def test_experiment_runs_a_synth_selector_through_the_store(
            self, tmp_path):
        spec = ExperimentSpec(
            name="synth-e2e",
            kernels=("synth:baseline:0:2",),
            machines=(machine_by_name("XRdefault"),
                      machine_by_name("ZOLClite")),
        )
        config = RunConfig(store=str(tmp_path / "store"))
        result = run_experiment(spec, config)
        kernels = {record["kernel"] for record in result.records}
        assert kernels == {"synth:baseline:0:0", "synth:baseline:0:1"}
        assert result.simulated == 4 and result.cached == 0
        again = run_experiment(spec, config)
        assert again.cached == 4 and again.simulated == 0
        assert [r["cycles"] for r in again.records] \
            == [r["cycles"] for r in result.records]
