"""Unit + integration tests for the XRhrdwil (dbne) transform."""

from repro.asm import assemble
from repro.cpu.simulator import run_program
from repro.transform.hwlp_rewrite import rewrite_for_hwlp

DOWN_COUNT = """
        .data
out:    .word 0
        .text
main:   li   t0, 10
        li   s0, 0
loop:   addi s0, s0, 3
        addi t0, t0, -1
        bne  t0, zero, loop
        la   t1, out
        sw   s0, 0(t1)
        halt
"""

UP_COUNT_UNUSED = """
main:   li   t0, 0
        li   s0, 0
loop:   addi s0, s0, 3
        addi t0, t0, 1
        slti at, t0, 10
        bne  at, zero, loop
        halt
"""

UP_COUNT_USED = """
main:   li   t0, 0
        li   s0, 0
loop:   add  s0, s0, t0
        addi t0, t0, 1
        slti at, t0, 10
        bne  at, zero, loop
        halt
"""


class TestDownCount:
    def test_converted(self):
        result = rewrite_for_hwlp(DOWN_COUNT)
        assert result.converted_count == 1
        mnemonics = [i.mnemonic for i in result.program.instructions]
        assert "dbne" in mnemonics
        assert "bne" not in mnemonics

    def test_semantics_preserved(self):
        result = rewrite_for_hwlp(DOWN_COUNT)
        sim = run_program(result.program)
        assert sim.state.regs["s0"] == 30

    def test_one_instruction_saved_per_iteration(self):
        baseline = run_program(assemble(DOWN_COUNT))
        converted = run_program(rewrite_for_hwlp(DOWN_COUNT).program)
        assert baseline.stats.instructions - converted.stats.instructions == 10

    def test_step_minus_2_skipped(self):
        source = DOWN_COUNT.replace("addi t0, t0, -1", "addi t0, t0, -2")
        result = rewrite_for_hwlp(source)
        assert result.converted_count == 0
        assert any("-1" in r for r in result.skipped_loops.values())


class TestUpCountReversal:
    def test_unused_index_reversed(self):
        result = rewrite_for_hwlp(UP_COUNT_UNUSED)
        assert result.converted_count == 1
        sim = run_program(result.program)
        assert sim.state.regs["s0"] == 30

    def test_compare_removed(self):
        result = rewrite_for_hwlp(UP_COUNT_UNUSED)
        mnemonics = [i.mnemonic for i in result.program.instructions]
        assert "slti" not in mnemonics

    def test_used_index_skipped(self):
        result = rewrite_for_hwlp(UP_COUNT_USED)
        assert result.converted_count == 0
        assert any("consumed" in r for r in result.skipped_loops.values())
        sim = run_program(result.program)
        assert sim.state.regs["s0"] == 45  # unchanged semantics

    def test_register_bound_reversal(self):
        source = """
main:   li   s6, 10
        li   t0, 0
        li   s0, 0
loop:   addi s0, s0, 3
        addi t0, t0, 1
        slt  at, t0, s6
        bne  at, zero, loop
        halt
"""
        result = rewrite_for_hwlp(source)
        assert result.converted_count == 1
        sim = run_program(result.program)
        assert sim.state.regs["s0"] == 30


class TestNest:
    NEST = """
main:   li   t0, 3
outer:  li   t1, 4
inner:  addi s0, s0, 1
        addi t1, t1, -1
        bne  t1, zero, inner
        addi t0, t0, -1
        bne  t0, zero, outer
        halt
"""

    def test_default_converts_innermost_only(self):
        result = rewrite_for_hwlp(self.NEST)
        assert result.converted_count == 1
        assert any("hardware loop level" in r
                   for r in result.skipped_loops.values())
        sim = run_program(result.program)
        assert sim.state.regs["s0"] == 12

    def test_multi_level_option_converts_all(self):
        result = rewrite_for_hwlp(self.NEST, innermost_only=False)
        assert result.converted_count == 2
        sim = run_program(result.program)
        assert sim.state.regs["s0"] == 12

    def test_multi_exit_loop_skipped(self):
        source = """
main:   li   t0, 20
loop:   addi s0, s0, 1
        beq  s0, s1, out
        addi t0, t0, -1
        bne  t0, zero, loop
out:    halt
"""
        result = rewrite_for_hwlp(source)
        assert result.converted_count == 0
        assert any("multi-exit" in r for r in result.skipped_loops.values())


class TestTiming:
    def test_dbne_loop_back_has_no_flush(self):
        result = rewrite_for_hwlp(DOWN_COUNT)
        sim = run_program(result.program)
        # only the la/halt path remains flush-free; dbne taken 9 times
        # with hwloop_penalty=0 adds nothing.
        assert sim.stats.flush_cycles == 0
