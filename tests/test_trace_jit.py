"""Deterministic tests for the guard-based trace JIT.

The 5-way fuzz (``test_engine_fuzz.py``) samples branchy loop bodies at
random; this module pins the specific trace-JIT behaviours with
hand-written kernels whose control flow is known exactly:

* trace formation and loop residency on a branchy body,
* guard side exits leaving architectural state exactly where the
  per-slot engines would,
* bridge traces spliced for a hot opposite side,
* fault reconciliation when a trace body faults mid-chain,
* the no-JIT tier (``jit=False``) staying bit-identical too.
"""

import pytest

from repro.eval.machines import M_UZOLC, M_ZOLC_FULL, M_ZOLC_LITE

from strategies import controller_tuple, memory_image, state_tuple

MAX_STEPS = 200_000

ZOLC_MACHINES = (M_UZOLC, M_ZOLC_LITE, M_ZOLC_FULL)


def _observe(sim):
    return (state_tuple(sim), memory_image(sim), controller_tuple(sim))


def _run(prepared, engine="auto", jit=True):
    sim = prepared.make_simulator()
    if engine == "auto":
        sim.run(max_steps=MAX_STEPS)
    elif engine == "nojit":
        from repro.cpu.engine import run_traced

        predecoded = sim._ensure_predecoded()
        run_traced(sim, MAX_STEPS, predecoded, jit=False)
    else:
        sim.run(max_steps=MAX_STEPS, engine=engine)
    return sim


def _traces(sim):
    """Every instantiated Trace across the simulator's JIT tables."""
    out = []
    for table in sim._trace_jit_cache.values():
        out += [t for t in table.slots if t is not None]
    return out


#: Branchy counted loop in the canonical up_count_slt shape: the body
#: skips an accumulate every 8th iteration, so the trace guard fails
#: (side-exits) 8 times in 64 trips — over the bridge threshold, so the
#: cold side gets its own spliced path.
BRANCHY = """
        .data
scratch: .word 0, 0, 0, 0, 0, 0, 0, 0
        .text
main:
        li   s0, 0
        li   s1, 7
        la   t8, scratch
        li   t0, 0
loop:
        andi at, t0, 7
        bne  at, zero, skip
        addi s0, s0, 5
        sw   s0, 4(t8)
skip:
        add  s0, s0, t0
        lw   s2, 0(t8)
        addi s2, s2, 1
        sw   s2, 0(t8)
        addi t0, t0, 1
        slti at, t0, 64
        bne  at, zero, loop
        sw   s0, 0(t8)
        halt
"""

#: A guard that stays hot for 50 iterations, then diverges for the
#: tail: the first side exit happens deep into chain residency.
LATE_DIVERGE = """
        .data
scratch: .word 0, 0, 0, 0
        .text
main:
        li   s0, 0
        la   t8, scratch
        li   t0, 0
loop:
        slti at, t0, 50
        beq  at, zero, tail
        addi s0, s0, 2
        beq  zero, zero, cont
tail:
        addi s0, s0, 9
        sw   s0, 0(t8)
cont:
        addi t0, t0, 1
        slti at, t0, 64
        bne  at, zero, loop
        halt
"""

#: The hot path loads through an address that leaves the memory image
#: at iteration 17 (``t0 & 48`` turns non-zero at 16, shifted out of
#: range), long after the trace went hot and chain-resident.
FAULTING = """
        .data
scratch: .word 0, 0, 0, 0
        .text
main:
        li   s0, 0
        la   t8, scratch
        li   t0, 0
loop:
        andi at, t0, 7
        beq  at, zero, rare
        andi s2, t0, 48
        sll  s2, s2, 24
        add  s2, s2, t8
        lw   s3, 0(s2)
        add  s0, s0, s3
        beq  zero, zero, cont
rare:
        addi s0, s0, 3
cont:
        addi t0, t0, 1
        slti at, t0, 64
        bne  at, zero, loop
        halt
"""


class TestTraceFormation:
    @pytest.mark.parametrize("machine", ZOLC_MACHINES,
                             ids=lambda m: m.name)
    def test_branchy_body_goes_trace_resident(self, machine):
        """The branchy loop runs inside traces, bit-identical to step."""
        prepared = machine.prepare(BRANCHY)
        assert prepared.transformed_loops >= 1
        jit = _run(prepared)
        step = _run(prepared, engine="step")
        assert _observe(jit) == _observe(step)
        assert jit.trace_resident_steps > 0
        assert jit.chain_resident_steps > 0

    @pytest.mark.parametrize("machine", ZOLC_MACHINES,
                             ids=lambda m: m.name)
    def test_nojit_tier_stays_bit_identical(self, machine):
        """PR 5's no-JIT loop-resident tier is still exact."""
        prepared = machine.prepare(BRANCHY)
        nojit = _run(prepared, engine="nojit")
        step = _run(prepared, engine="step")
        assert _observe(nojit) == _observe(step)

    def test_trace_records_guards_for_auditing(self):
        """Every trace codegen record carries its guard positions."""
        from repro.cpu.engine.emit import codegen_records

        prepared = M_ZOLC_LITE.prepare(BRANCHY)
        sim = _run(prepared)
        records = [r for r in codegen_records(sim.program).values()
                   if r.kind in ("trace", "trace_chain")]
        assert records, "no trace codegen records filed"
        assert all(r.guards for r in records)


class TestGuardSideExits:
    @pytest.mark.parametrize("machine", ZOLC_MACHINES,
                             ids=lambda m: m.name)
    def test_late_divergence_is_exact(self, machine):
        """A guard failing after 50 resident iterations stays exact.

        The side exit must hand per-slot dispatch the same pc, pending
        load and cycle count the stepped oracle reaches, or the tail
        iterations disagree — the assertion covers registers, memory,
        cycles, stats and controller counters at once.
        """
        prepared = machine.prepare(LATE_DIVERGE)
        jit = _run(prepared)
        step = _run(prepared, engine="step")
        assert _observe(jit) == _observe(step)

    def test_bridge_trace_spliced_for_hot_opposite_side(self):
        """The every-8th cold side is hot enough to earn a bridge.

        After the run, the entry's Trace must cover more than one path
        (the original hot path plus at least one spliced bridge).
        """
        prepared = M_ZOLC_LITE.prepare(BRANCHY)
        sim = _run(prepared)
        traces = _traces(sim)
        assert traces, "no trace was promoted"
        assert any(len(t.paths) > 1 for t in traces), (
            "no bridge was spliced: paths per trace = "
            f"{[len(t.paths) for t in traces]}")


class TestMidTraceFaults:
    @pytest.mark.parametrize("machine", ZOLC_MACHINES,
                             ids=lambda m: m.name)
    def test_fault_inside_hot_trace_reconciles(self, machine):
        """A load fault mid-trace post-mortems exactly like step.

        The faulting iteration's prefix must retire (registers, cycles,
        stats), the pc must land on the faulting member, and both
        engines must raise the same exception type.
        """
        prepared = machine.prepare(FAULTING)
        outcomes = {}
        for engine in ("step", "auto"):
            sim = prepared.make_simulator()
            try:
                if engine == "auto":
                    sim.run(max_steps=MAX_STEPS)
                else:
                    sim.run(max_steps=MAX_STEPS, engine=engine)
            except Exception as exc:
                outcomes[engine] = (type(exc).__name__, _observe(sim))
            else:
                pytest.fail(f"{engine} did not fault")
        assert outcomes["auto"] == outcomes["step"]
