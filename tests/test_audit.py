"""The generated-code auditor, including the tampering corpus.

The negative tests corrupt one compiled artifact each — a register
index in the emitted source (AU001), an addressing displacement
(AU002), a predecoded per-op timing constant (AU003), a fault line map
(AU004), a trace guard table or its baked step constants (AU005) — and
assert the auditor reports it under the documented rule id.  Tampering
works because the code caches never re-record on a hit, so a corrupted
record survives a fresh ``audit_codegen`` pass.
"""

import pytest

from repro.asm import assemble
from repro.cpu.analysis import audit_codegen, source_touches
from repro.cpu.analysis.audit import (
    audit_trace_record,
    expected_touches,
    span_starts,
)
from repro.cpu.analysis.verify import (
    VerifyContext,
    trace_candidate_bodies,
)
from repro.cpu.engine.emit import codegen_records
from repro.cpu.ir import build_ir, straightline_terms
from repro.cpu.simulator import Simulator
from repro.eval.check import check_kernel, static_plan
from repro.eval.machines import machine_registry
from repro.workloads.suite import registry

STRAIGHTLINE = """
    li   t0, 5
    addi t1, t0, 2
    lw   t2, 0(a0)
    sw   t2, 4(a0)
    halt
"""


def _sim(source):
    return Simulator(assemble(source))


def _audited(sim, **kwargs):
    return audit_codegen(sim, **kwargs)


def _errors(findings):
    return [d for d in findings if d.severity == "error"]


def _first_region_key(program):
    keys = [k for k in codegen_records(program) if k[0] == "region"]
    assert keys
    return keys[0]


class TestSourceTouches:
    def test_reads_writes_and_offsets(self):
        src = ("_g[9] = (_g[8] + 2) & 0xFFFFFFFF\n"
               "_a = (_g[4] + 12) & 0xFFFFF\n"
               "_v = _m[_a]\n")
        touches = source_touches(src)
        assert touches.reg_reads == {8, 4}
        assert touches.reg_writes == {9}
        assert touches.mem_offsets == [12]

    def test_dynamic_subscripts_skipped(self):
        touches = source_touches("_g[_r] = 0\n_x = _g[_r]\n")
        assert touches.reg_reads == set()
        assert touches.reg_writes == set()


class TestPositive:
    def test_straightline_program_audits_clean(self):
        findings = _audited(_sim(STRAIGHTLINE))
        assert _errors(findings) == []

    @pytest.mark.parametrize("machine_name",
                             ["XRdefault", "ZOLClite", "ZOLCfull"])
    def test_vec_sum_audits_clean(self, machine_name):
        machine = machine_registry().get(machine_name)
        findings = check_kernel(registry().get("vec_sum"), machine,
                                audit=True)
        assert _errors(findings) == []

    def test_expected_touches_dead_write_rule(self):
        # A non-memory op writing only r0 emits nothing, so the IR
        # expectation must drop its reads too.
        ir = build_ir(assemble("add zero, t0, t1\nhalt\n"))
        expect = expected_touches(ir[:1], "chain", ())
        assert expect.reg_reads == set()
        assert expect.reg_writes == set()


def _force_regions(sim):
    """Audit once (must be clean) and return the program."""
    findings = _audited(sim)
    assert _errors(findings) == []
    return sim.program


class TestTampering:
    def test_tampered_register_reported_au001(self):
        sim = _sim(STRAIGHTLINE)
        program = _force_regions(sim)
        key = _first_region_key(program)
        records = codegen_records(program)
        record = records[key]
        touched = source_touches(record.source)
        victim = min(touched.reg_reads)
        records[key] = record._replace(
            source=record.source.replace(f"_g[{victim}]", "_g[30]"))
        findings = _audited(sim)
        assert any(d.rule == "AU001" for d in _errors(findings))

    def test_tampered_offset_reported_au002(self):
        sim = _sim(STRAIGHTLINE)
        program = _force_regions(sim)
        records = codegen_records(program)
        for key, record in records.items():
            if "+ 4)" in record.source:
                records[key] = record._replace(
                    source=record.source.replace("+ 4)", "+ 8)"))
                break
        else:
            pytest.fail("no record with the expected displacement")
        findings = _audited(sim)
        assert any(d.rule == "AU002" for d in _errors(findings))

    def test_tampered_timing_reported_au003(self):
        sim = _sim(STRAIGHTLINE)
        program = _force_regions(sim)
        predecoded = sim._ensure_predecoded()
        fn, base_cycles, uses, load_dest, taken = predecoded.ops[0]
        predecoded.ops[0] = (fn, base_cycles + 3, uses, load_dest,
                             taken)
        findings = _audited(sim)
        assert any(d.rule == "AU003" and "static timing" in d.message
                   for d in _errors(findings))

    def test_tampered_line_map_reported_au004(self):
        sim = _sim(STRAIGHTLINE)
        program = _force_regions(sim)
        key = _first_region_key(program)
        records = codegen_records(program)
        record = records[key]
        records[key] = record._replace(
            line_member=record.line_member[:-1])
        findings = _audited(sim)
        assert any(d.rule == "AU004" for d in _errors(findings))


def _trace_audit(kernel_name="me_fss", machine_name="ZOLClite"):
    """Audit one branchy kernel's traces; returns the working state."""
    machine = machine_registry().get(machine_name)
    prepared = machine.prepare(registry().get(kernel_name).source)
    program = prepared.program
    ir = build_ir(program)
    base = program.text_base
    plan = static_plan(prepared)
    ctx = VerifyContext(ir=ir, base=base,
                        entry_pc=program.entry_point(), plan=plan)
    rows = [(start, tslot, lp.loop_id)
            for start, tslot, lp in trace_candidate_bodies(ctx)]
    sim = prepared.make_simulator()
    findings = audit_codegen(sim, watched=plan.watched_next_pcs(),
                             traces=rows)
    return program, ir, base, rows, findings


class TestTraceAudit:
    def test_branchy_kernel_traces_audit_clean(self):
        program, _ir, _base, rows, findings = _trace_audit()
        assert rows, "me_fss has no multi-region watched body"
        assert _errors(findings) == []
        kinds = {k[0] for k in codegen_records(program)}
        assert {"trace", "trace_chain"} <= kinds, (
            "the audit warm-up run promoted no trace")

    def test_check_kernel_audits_branchy_kernel_clean(self):
        machine = machine_registry().get("ZOLCfull")
        findings = check_kernel(registry().get("me_fss"), machine,
                                audit=True)
        assert _errors(findings) == []

    def test_tampered_guard_slot_reported_au005(self):
        program, ir, base, rows, findings = _trace_audit()
        assert _errors(findings) == []
        records = codegen_records(program)
        for start, tslot, loop_id in rows:
            record = records.get(("trace", start, start, loop_id))
            if record is None:
                continue
            # Point the first guard at the entry slot, which the
            # candidate geometry guarantees is not a branch.
            lineno, _slot, hot = record.guards[0]
            bent = ((lineno, start, hot),) + record.guards[1:]
            findings = audit_trace_record(
                record._replace(guards=bent), ir, base,
                base + 4 * tslot)
            assert any(d.rule == "AU005" for d in _errors(findings))
            return
        pytest.fail("no trace record to tamper with")

    def test_tampered_step_constant_reported_au005(self):
        import re

        program, ir, base, rows, findings = _trace_audit()
        assert _errors(findings) == []
        records = codegen_records(program)
        for start, tslot, loop_id in rows:
            record = records.get(("trace_chain", start, start,
                                  loop_id))
            if record is None:
                continue
            source, hits = re.subn(
                r"_steps \+= (\d+)",
                lambda m: f"_steps += {int(m.group(1)) + 1}",
                record.source, count=1)
            assert hits == 1, "chain source bakes no step constant"
            findings = audit_trace_record(
                record._replace(source=source), ir, base,
                base + 4 * tslot)
            assert any(d.rule == "AU005" for d in _errors(findings))
            return
        pytest.fail("no trace-chain record to tamper with")


class TestSpanCover:
    def test_span_starts_partition_watched_text(self):
        program = assemble(STRAIGHTLINE)
        ir = build_ir(program)
        base = program.text_base
        watched = frozenset({base + 8})
        terms = straightline_terms(ir, base, watched)
        starts = span_starts(ir, base, watched, terms)
        assert starts[0] == 0
        assert base + 4 * starts[1] == base + 8  # watch splits here
