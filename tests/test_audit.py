"""The generated-code auditor, including the tampering corpus.

The negative tests corrupt one compiled artifact each — a register
index in the emitted source (AU001), an addressing displacement
(AU002), a predecoded per-op timing constant (AU003), a fault line map
(AU004) — and assert the auditor reports it under the documented rule
id.  Tampering works because the code caches never re-record on a hit,
so a corrupted record survives a fresh ``audit_codegen`` pass.
"""

import pytest

from repro.asm import assemble
from repro.cpu.analysis import audit_codegen, source_touches
from repro.cpu.analysis.audit import expected_touches, span_starts
from repro.cpu.engine.emit import codegen_records
from repro.cpu.ir import build_ir, straightline_terms
from repro.cpu.simulator import Simulator
from repro.eval.check import check_kernel
from repro.eval.machines import machine_registry
from repro.workloads.suite import registry

STRAIGHTLINE = """
    li   t0, 5
    addi t1, t0, 2
    lw   t2, 0(a0)
    sw   t2, 4(a0)
    halt
"""


def _sim(source):
    return Simulator(assemble(source))


def _audited(sim, **kwargs):
    return audit_codegen(sim, **kwargs)


def _errors(findings):
    return [d for d in findings if d.severity == "error"]


def _first_region_key(program):
    keys = [k for k in codegen_records(program) if k[0] == "region"]
    assert keys
    return keys[0]


class TestSourceTouches:
    def test_reads_writes_and_offsets(self):
        src = ("_g[9] = (_g[8] + 2) & 0xFFFFFFFF\n"
               "_a = (_g[4] + 12) & 0xFFFFF\n"
               "_v = _m[_a]\n")
        touches = source_touches(src)
        assert touches.reg_reads == {8, 4}
        assert touches.reg_writes == {9}
        assert touches.mem_offsets == [12]

    def test_dynamic_subscripts_skipped(self):
        touches = source_touches("_g[_r] = 0\n_x = _g[_r]\n")
        assert touches.reg_reads == set()
        assert touches.reg_writes == set()


class TestPositive:
    def test_straightline_program_audits_clean(self):
        findings = _audited(_sim(STRAIGHTLINE))
        assert _errors(findings) == []

    @pytest.mark.parametrize("machine_name",
                             ["XRdefault", "ZOLClite", "ZOLCfull"])
    def test_vec_sum_audits_clean(self, machine_name):
        machine = machine_registry().get(machine_name)
        findings = check_kernel(registry().get("vec_sum"), machine,
                                audit=True)
        assert _errors(findings) == []

    def test_expected_touches_dead_write_rule(self):
        # A non-memory op writing only r0 emits nothing, so the IR
        # expectation must drop its reads too.
        ir = build_ir(assemble("add zero, t0, t1\nhalt\n"))
        expect = expected_touches(ir[:1], "chain", ())
        assert expect.reg_reads == set()
        assert expect.reg_writes == set()


def _force_regions(sim):
    """Audit once (must be clean) and return the program."""
    findings = _audited(sim)
    assert _errors(findings) == []
    return sim.program


class TestTampering:
    def test_tampered_register_reported_au001(self):
        sim = _sim(STRAIGHTLINE)
        program = _force_regions(sim)
        key = _first_region_key(program)
        records = codegen_records(program)
        record = records[key]
        touched = source_touches(record.source)
        victim = min(touched.reg_reads)
        records[key] = record._replace(
            source=record.source.replace(f"_g[{victim}]", "_g[30]"))
        findings = _audited(sim)
        assert any(d.rule == "AU001" for d in _errors(findings))

    def test_tampered_offset_reported_au002(self):
        sim = _sim(STRAIGHTLINE)
        program = _force_regions(sim)
        records = codegen_records(program)
        for key, record in records.items():
            if "+ 4)" in record.source:
                records[key] = record._replace(
                    source=record.source.replace("+ 4)", "+ 8)"))
                break
        else:
            pytest.fail("no record with the expected displacement")
        findings = _audited(sim)
        assert any(d.rule == "AU002" for d in _errors(findings))

    def test_tampered_timing_reported_au003(self):
        sim = _sim(STRAIGHTLINE)
        program = _force_regions(sim)
        predecoded = sim._ensure_predecoded()
        fn, base_cycles, uses, load_dest, taken = predecoded.ops[0]
        predecoded.ops[0] = (fn, base_cycles + 3, uses, load_dest,
                             taken)
        findings = _audited(sim)
        assert any(d.rule == "AU003" and "static timing" in d.message
                   for d in _errors(findings))

    def test_tampered_line_map_reported_au004(self):
        sim = _sim(STRAIGHTLINE)
        program = _force_regions(sim)
        key = _first_region_key(program)
        records = codegen_records(program)
        record = records[key]
        records[key] = record._replace(
            line_member=record.line_member[:-1])
        findings = _audited(sim)
        assert any(d.rule == "AU004" for d in _errors(findings))


class TestSpanCover:
    def test_span_starts_partition_watched_text(self):
        program = assemble(STRAIGHTLINE)
        ir = build_ir(program)
        base = program.text_base
        watched = frozenset({base + 8})
        terms = straightline_terms(ir, base, watched)
        starts = span_starts(ir, base, watched, terms)
        assert starts[0] == 0
        assert base + 4 * starts[1] == base + 8  # watch splits here
