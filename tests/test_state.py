"""Unit tests for architectural state (register file, CPU state)."""

from repro.cpu.state import CpuState, RegisterFile


class TestRegisterFile:
    def test_zero_register_reads_zero(self):
        regs = RegisterFile()
        regs.write(0, 123)
        assert regs.read(0) == 0

    def test_write_masks_to_32_bits(self):
        regs = RegisterFile()
        regs.write(5, 1 << 40)
        assert regs.read(5) == 0

    def test_read_signed(self):
        regs = RegisterFile()
        regs.write(5, 0xFFFFFFFF)
        assert regs.read_signed(5) == -1
        assert regs.read(5) == 0xFFFFFFFF

    def test_name_based_access(self):
        regs = RegisterFile()
        regs["t0"] = -3
        assert regs["t0"] == 0xFFFFFFFD
        assert regs[8] == 0xFFFFFFFD
        regs["$sp"] = 0x1000
        assert regs["sp"] == 0x1000

    def test_name_write_to_zero_ignored(self):
        regs = RegisterFile()
        regs["zero"] = 77
        assert regs["zero"] == 0

    def test_snapshot_immutable_copy(self):
        regs = RegisterFile()
        regs.write(3, 9)
        snap = regs.snapshot()
        regs.write(3, 10)
        assert snap[3] == 9
        assert len(snap) == 32


class TestCpuState:
    def test_initial_state(self):
        state = CpuState(entry_point=0x40)
        assert state.pc == 0x40
        assert not state.halted
        assert state.regs.read(29) == 0
