"""The batch tier (``engine="batch"`` / :func:`run_batch`) end to end.

The lockstep contract: a batch of N cells retires, per cell, exactly
the sequence that cell's scalar run retires — same registers, memory,
cycles, stats and controller counters, same post-mortem state on
faults.  These tests pin the contract where it is easiest to break:
≥16-cell sweeps (identical cells and per-cell pipeline sweeps),
mid-run divergence ejection, pre-run ejection (tracer, planless port,
mixed programs), watchdog semantics, mid-span fault reconciliation,
and the ``BatchBackend`` / CLI / plan wiring above the engine.
"""

from dataclasses import asdict

import pytest

from repro.asm import assemble
from repro.cpu import PlanlessZolcPort, Simulator, WatchdogError
from repro.cpu.engine import run_batch
from repro.cpu.exceptions import MemoryAccessError
from repro.cpu.pipeline import PipelineConfig
from repro.cpu.tracing import Tracer
from repro.eval.machines import ALL_MACHINES, M_ZOLC_LITE, XR_DEFAULT
from repro.experiments.backends import Cell, get_backend

MAX_STEPS = 20_000_000


def _state_tuple(sim):
    return (sim.state.pc, sim.state.halted, sim.state.regs.snapshot(),
            asdict(sim.stats), sim.timing.stall_cycles,
            sim.timing.flush_cycles, sim.timing._pending_load_dest)


def _controller_tuple(sim):
    zolc = sim.zolc
    if zolc is None:
        return None
    if isinstance(zolc, PlanlessZolcPort):
        zolc = zolc.inner
    return (zolc.active, getattr(zolc, "arm_count", None))


def _observe(sim):
    return (_state_tuple(sim), bytes(sim.memory._bytes),
            _controller_tuple(sim))


class TestSweepBitIdentity:
    @pytest.mark.parametrize("machine", ALL_MACHINES,
                             ids=lambda m: m.name)
    def test_16_identical_cells_match_traced(self, kernel_registry,
                                             machine):
        """A 16-cell batch == 16 per-cell traced runs, bit for bit."""
        prepared = machine.prepare(kernel_registry.get("fir").source)
        reference = prepared.make_simulator()
        reference.run(max_steps=MAX_STEPS, engine="traced")
        cells = [prepared.make_simulator() for _ in range(16)]
        errors = run_batch(cells, MAX_STEPS)
        assert errors == [None] * 16
        expected = _observe(reference)
        for cell in cells:
            assert cell.last_engine == "batch"
            assert _observe(cell) == expected

    def test_pipeline_sweep_cells_stay_locked(self, kernel_registry):
        """Cells with different pipeline configs share one batch.

        Timing never feeds back into architecture, so a config sweep
        retires one shared pc trajectory with per-cell cycle counts —
        the batch tier's home turf.
        """
        prepared = M_ZOLC_LITE.prepare(
            kernel_registry.get("dot_product").source)
        configs = [PipelineConfig(load_use_stall=lus, branch_penalty=bp,
                                  mul_extra_cycles=mul)
                   for lus in (0, 1, 2, 3)
                   for bp, mul in ((1, 0), (2, 3))]
        assert len(configs) >= 8
        cells = [prepared.make_simulator(pipeline=config)
                 for config in configs * 2]
        errors = run_batch(cells, MAX_STEPS)
        assert errors == [None] * len(cells)
        for cell, config in zip(cells, configs * 2):
            reference = prepared.make_simulator(pipeline=config)
            reference.run(max_steps=MAX_STEPS, engine="traced")
            assert _observe(cell) == _observe(reference)

    def test_single_cell_runs_the_real_driver(self, kernel_registry):
        prepared = M_ZOLC_LITE.prepare(kernel_registry.get("fir").source)
        sim = prepared.make_simulator()
        stats = sim.run(max_steps=MAX_STEPS, engine="batch")
        assert sim.last_engine == "batch"
        reference = prepared.make_simulator()
        reference.run(max_steps=MAX_STEPS, engine="step")
        assert stats.cycles == reference.stats.cycles
        assert _observe(sim) == _observe(reference)


DIVERGE_SRC = """
        li   t1, 10
loop:
        add  s0, s0, t0
        addi t1, t1, -1
        bne  t1, zero, loop
        beq  t0, zero, skip
        addi s1, s1, 7
skip:
        halt
"""


class TestDivergenceEjection:
    def test_diverging_cells_finish_on_the_scalar_tier(self):
        """Cells whose branch outcomes split still retire exactly."""
        program = assemble(DIVERGE_SRC)
        cells = [Simulator(program) for _ in range(8)]
        for i, cell in enumerate(cells):
            cell.state.regs.write(8, i % 3)      # t0: 0,1,2,0,...
        errors = run_batch(cells, MAX_STEPS)
        assert errors == [None] * 8
        for i, cell in enumerate(cells):
            reference = Simulator(program)
            reference.state.regs.write(8, i % 3)
            reference.run(max_steps=MAX_STEPS, engine="step")
            assert cell.last_engine == "batch"
            assert _observe(cell) == _observe(reference)

    def test_mixed_programs_eject_cleanly(self):
        a = Simulator(assemble("li t0, 1\nhalt\n"))
        b = Simulator(assemble("li t1, 2\nli t2, 3\nhalt\n"))
        errors = run_batch([a, b], MAX_STEPS)
        assert errors == [None, None]
        assert a.state.halted and b.state.halted
        assert a.last_engine == "batch" and b.last_engine == "batch"
        assert b.stats.instructions == 3


class TestPreRunEjection:
    def test_tracer_cell_runs_stepped_and_records(self):
        program = assemble("li t0, 1\nhalt\n")
        traced = Simulator(program, tracer=Tracer())
        plain = Simulator(program)
        errors = run_batch([traced, plain], MAX_STEPS)
        assert errors == [None, None]
        assert len(traced.tracer.records) == 2
        assert _state_tuple(traced) == _state_tuple(plain)

    def test_engine_batch_rejects_tracer_like_the_other_tiers(self):
        sim = Simulator(assemble("halt\n"), tracer=Tracer())
        with pytest.raises(ValueError, match="does not record traces"):
            sim.run(engine="batch")

    def test_planless_port_cell_ejects_and_matches(self, kernel_registry):
        prepared = M_ZOLC_LITE.prepare(
            kernel_registry.get("vec_sum").source)
        planless = prepared.make_simulator()
        planless.zolc = PlanlessZolcPort(planless.zolc)
        planful = prepared.make_simulator()
        errors = run_batch([planless, planful], MAX_STEPS)
        assert errors == [None, None]
        assert _state_tuple(planless) == _state_tuple(planful)

    def test_already_halted_cell_is_a_noop(self):
        sim = Simulator(assemble("halt\n"))
        sim.run(engine="step")
        before = _observe(sim)
        assert run_batch([sim], MAX_STEPS) == [None]
        assert _observe(sim) == before


class TestFaults:
    def test_watchdog_matches_scalar_message_and_state(self):
        source = "loop:\nj loop\n"
        program = assemble(source)
        cells = [Simulator(program) for _ in range(4)]
        errors = run_batch(cells, 100)
        reference = Simulator(program)
        with pytest.raises(WatchdogError) as excinfo:
            reference.run(max_steps=100, engine="traced")
        for cell, error in zip(cells, errors):
            assert isinstance(error, WatchdogError)
            assert str(error) == str(excinfo.value)
            assert _observe(cell) == _observe(reference)

    FAULT_SRC = """
        li   t1, 4
loop:
        add  s0, s0, t1
        lw   t2, 0(t0)
        add  s1, s1, t2
        addi t1, t1, -1
        bne  t1, zero, loop
        halt
"""

    def test_mid_span_fault_reconciles_per_cell(self):
        """One cell faults mid-span; the rest keep running.

        The faulting cell's prefix retires and its pc lands on the
        faulting member (the traced tier's reconciliation contract);
        cells after it in the batch continue unharmed.
        """
        program = assemble(self.FAULT_SRC)
        cells = [Simulator(program) for _ in range(4)]
        cells[1].state.regs.write(8, 0xFFFF0000)   # t0: way out of bounds
        errors = run_batch(cells, MAX_STEPS)
        assert errors[0] is None and errors[2] is None and errors[3] is None
        assert isinstance(errors[1], MemoryAccessError)
        reference = Simulator(program)
        reference.state.regs.write(8, 0xFFFF0000)
        with pytest.raises(MemoryAccessError) as excinfo:
            reference.run(max_steps=MAX_STEPS, engine="traced")
        assert str(errors[1]) == str(excinfo.value)
        assert _observe(cells[1]) == _observe(reference)
        clean = Simulator(program)
        clean.run(max_steps=MAX_STEPS, engine="step")
        for cell in (cells[0], cells[2], cells[3]):
            assert _observe(cell) == _observe(clean)

    def test_all_cells_faulting_all_report(self):
        program = assemble(self.FAULT_SRC)
        cells = [Simulator(program) for _ in range(3)]
        for cell in cells:
            cell.state.regs.write(8, 0xFFFF0000)
        errors = run_batch(cells, MAX_STEPS)
        reference = Simulator(program)
        reference.state.regs.write(8, 0xFFFF0000)
        with pytest.raises(MemoryAccessError):
            reference.run(max_steps=MAX_STEPS, engine="step")
        for cell, error in zip(cells, errors):
            assert isinstance(error, MemoryAccessError)
            assert _observe(cell) == _observe(reference)


class TestBackend:
    def test_batch_backend_matches_serial(self, kernel_registry):
        cells = [Cell(kernel_name=name, machine=machine,
                      pipeline=PipelineConfig(load_use_stall=lus),
                      max_steps=MAX_STEPS)
                 for name in ("vec_sum", "fir")
                 for machine in (XR_DEFAULT, M_ZOLC_LITE)
                 for lus in (0, 1, 2, 3)]
        assert len(cells) == 16
        serial = get_backend("serial").run_cells(cells)
        batch = get_backend("batch").run_cells(cells)
        assert [r.record() for r in batch] == \
            [r.record() for r in serial]

    def test_backend_registry_exposes_batch(self):
        backend = get_backend("batch", jobs=4)
        assert backend.name == "batch"
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("sharded")

    def test_experiment_spec_accepts_batch_engine(self):
        from repro.experiments.spec import ExperimentSpec

        spec = ExperimentSpec(name="t", kernels=["vec_sum"],
                              machines=[XR_DEFAULT], engine="batch")
        assert spec.engine == "batch"
        with pytest.raises(ValueError, match="unknown engine"):
            ExperimentSpec(name="t", kernels=["vec_sum"],
                           machines=[XR_DEFAULT], engine="turbo")

    def test_cli_parse_engine_accepts_batch(self):
        from repro.cli import _parse_engine

        assert _parse_engine("batch") == "batch"
