"""Cross-engine differential fuzzing: step vs fast vs traced vs batch vs auto.

The execution engines promise bit-identical retirement: same final
registers, memory, cycles, stats and controller counters for any
program on any machine under any pipeline timing.  ``tests/test_engine.
py`` pins that invariant on the hand-written suite; this module pins it
on *generated* programs (``tests/strategies.py``): random structured
loop nests — in the shapes the ZOLC transform drives in hardware,
including multi-nest programs that re-arm single-shot controllers
mid-run — and random straight-line ALU programs, each crossed with
generated machines and pipeline timings.

The sweep is 5-way: the four explicit engines plus ``auto``, which
resolves to the loop-resident traced tier (fire→re-entry chains +
inlined memory access), so every generated ZOLC loop also exercises
the chained dispatch against the per-instruction oracles.  The
``batch`` engine runs both degenerately (one cell *is* the lockstep
driver) and as a 4-cell batch whose every cell must match the stepped
oracle bit for bit.

Any divergence fails with the generating source attached, so a
counterexample is directly replayable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.cpu import Simulator

from strategies import (
    alu_instructions,
    controller_tuple,
    loop_nest_kernels,
    machines,
    memory_image,
    pipeline_configs,
    reg_seeds,
    render_alu_program,
    state_tuple,
)

ENGINES = ("step", "fast", "traced", "batch", "auto")

MAX_STEPS = 200_000


def _observe(sim):
    return (state_tuple(sim), memory_image(sim), controller_tuple(sim))


def _assert_engines_agree(make_simulator, source):
    observations = {}
    for engine in ENGINES:
        sim = make_simulator()
        sim.run(max_steps=MAX_STEPS, engine=engine)
        if engine == "auto":
            # `auto` is the loop-resident traced tier.
            assert sim.last_engine == "traced", sim.last_engine
        observations[engine] = _observe(sim)
    # N-cell lockstep: four independent cells stepped by one driver.
    from repro.cpu.engine import run_batch

    cells = [make_simulator() for _ in range(4)]
    errors = run_batch(cells, MAX_STEPS)
    assert errors == [None] * 4, errors
    for cell in cells:
        assert cell.last_engine == "batch"
        observations.setdefault("batch4", _observe(cell))
        assert _observe(cell) == observations["batch4"], \
            f"batch cells diverged for program:\n{source}"
    for engine in list(ENGINES[1:]) + ["batch4"]:
        assert observations[engine] == observations["step"], \
            f"{engine} diverged from step for program:\n{source}"


class TestLoopNestKernels:
    @settings(max_examples=30, deadline=None)
    @given(source=loop_nest_kernels(), machine=machines(),
           pipeline=pipeline_configs())
    def test_engines_bit_identical(self, source, machine, pipeline):
        """Generated kernels × machines × pipelines: zero divergence."""
        prepared = machine.prepare(source)
        _assert_engines_agree(
            lambda: prepared.make_simulator(pipeline=pipeline), source)

    @settings(max_examples=12, deadline=None)
    @given(source=loop_nest_kernels(max_nests=2), machine=machines(),
           pipeline=pipeline_configs())
    def test_deep_nests_with_rearm(self, source, machine, pipeline):
        """Multi-nest programs: single-shot controllers re-arm mid-run.

        Also asserts the run actually drove the controller when the
        transform converted loops, so this suite cannot silently decay
        into testing untransformed code.
        """
        prepared = machine.prepare(source)
        sim = prepared.make_simulator(pipeline=pipeline)
        sim.run(max_steps=MAX_STEPS, engine="traced")
        if prepared.transformed_loops and sim.zolc is not None:
            assert getattr(sim.zolc, "arm_count", 0) >= 1
        _assert_engines_agree(
            lambda: prepared.make_simulator(pipeline=pipeline), source)


class TestAluPrograms:
    @settings(max_examples=60, deadline=None)
    @given(spec=st.lists(alu_instructions(), min_size=1, max_size=24),
           seeds=reg_seeds, pipeline=pipeline_configs())
    def test_engines_bit_identical(self, spec, seeds, pipeline):
        source = render_alu_program(spec, seeds)
        program = assemble(source)
        _assert_engines_agree(
            lambda: Simulator(program, pipeline=pipeline), source)


class TestRearmDeterministic:
    """A pinned two-nest program so mid-run re-arm coverage does not
    depend on what Hypothesis happens to generate."""

    # Two sequential innermost loops of 8 trips each: uZOLC (single
    # loop, single-shot, >= 7 trips to amortise init) converts both and
    # must re-arm between them.
    SOURCE = """
        .data
scratch: .word 0, 0, 0, 0
        .text
main:
        li   s0, 3
        li   s1, 5
        la   t8, scratch
        li   t0, 0
first:
        add  s0, s0, t0
        addi t0, t0, 1
        slti at, t0, 8
        bne  at, zero, first
        sw   s0, 0(t8)
        li   t0, 0
second:
        add  s1, s1, t0
        sw   s1, 4(t8)
        addi t0, t0, 1
        slti at, t0, 8
        bne  at, zero, second
        halt
"""

    def test_single_shot_rearms_and_engines_agree(self):
        from repro.eval.machines import M_UZOLC

        prepared = M_UZOLC.prepare(self.SOURCE)
        assert prepared.transformed_loops >= 2
        sims = {}
        for engine in ENGINES:
            sim = prepared.make_simulator()
            sim.run(max_steps=MAX_STEPS, engine=engine)
            sims[engine] = sim
        # uZOLC is single-shot: the second nest forces a fresh arm.
        assert sims["traced"].zolc.arm_count >= 2
        for engine in ("fast", "traced", "batch"):
            assert _observe(sims[engine]) == _observe(sims["step"])
