"""Unit tests for the hardware model (E3/E4/E5 roll-ups)."""

import pytest

from repro.core.config import CANONICAL_CONFIGS, UZOLC, ZOLC_FULL
from repro.eval.report import (
    render_area_breakdown,
    render_resource_table,
    render_storage_breakdown,
    render_timing_report,
)
from repro.hwmodel.area import PAPER_EQUIVALENT_GATES, canonical_area_reports
from repro.hwmodel.storage import PAPER_STORAGE_BYTES, canonical_storage_reports
from repro.hwmodel.timing import (
    CPU_CYCLE_NS,
    affects_cycle_time,
    cpu_critical_path,
    timing_slack_ns,
    zolc_critical_path,
)


class TestStorageReports:
    def test_all_match_paper(self):
        for report in canonical_storage_reports():
            assert report.matches_paper, report.config.name

    def test_paper_constants(self):
        assert PAPER_STORAGE_BYTES == {
            "uZOLC": 30, "ZOLClite": 258, "ZOLCfull": 642}

    def test_unknown_config_has_no_paper_value(self):
        from repro.core.config import ZolcConfig
        from repro.hwmodel.storage import storage_report
        custom = ZolcConfig("custom", max_loops=2, max_task_entries=8,
                            entries_per_loop=1, multi_entry_exit=False)
        report = storage_report(custom)
        assert report.paper_value is None
        assert report.matches_paper is None


class TestAreaReports:
    def test_all_match_paper(self):
        for report in canonical_area_reports():
            assert report.matches_paper, report.config.name

    def test_paper_constants(self):
        assert PAPER_EQUIVALENT_GATES == {
            "uZOLC": 298, "ZOLClite": 4056, "ZOLCfull": 4428}


class TestTiming:
    def test_no_config_affects_cycle_time(self):
        # E5: "The processor cycle time is not affected due to ZOLC."
        for config in CANONICAL_CONFIGS:
            assert not affects_cycle_time(config)

    def test_positive_slack_everywhere(self):
        for config in CANONICAL_CONFIGS:
            assert timing_slack_ns(config) > 0

    def test_zolc_path_well_under_half_cycle(self):
        for config in CANONICAL_CONFIGS:
            assert zolc_critical_path(config).delay_ns < CPU_CYCLE_NS / 2

    def test_cpu_path_defines_cycle(self):
        path = cpu_critical_path()
        assert path.delay_ns == pytest.approx(CPU_CYCLE_NS, rel=0.02)

    def test_bigger_lut_deepens_path(self):
        assert zolc_critical_path(ZOLC_FULL).depth \
            >= zolc_critical_path(UZOLC).depth


class TestRenderers:
    def test_resource_table_shows_matches(self):
        text = render_resource_table()
        assert "uZOLC" in text and "ZOLCfull" in text
        assert text.count("yes") == 6
        assert "NO" not in text.replace("ZOLC", "")

    def test_storage_breakdown_totals(self):
        text = render_storage_breakdown()
        assert "258" in text and "642" in text and "30" in text

    def test_area_breakdown_totals(self):
        text = render_area_breakdown()
        assert "4056" in text and "4428" in text and "298" in text

    def test_timing_report(self):
        text = render_timing_report()
        assert "170 MHz" in text
        assert "none" in text
        assert "WOULD SLOW CLOCK" not in text
