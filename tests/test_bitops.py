"""Unit tests for repro.util.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    MASK32,
    extract_bits,
    fits_signed,
    fits_unsigned,
    insert_bits,
    sign_extend,
    to_signed32,
    to_unsigned32,
)


class TestSignExtend:
    def test_positive_16(self):
        assert sign_extend(0x7FFF, 16) == 32767

    def test_negative_16(self):
        assert sign_extend(0xFFFF, 16) == -1

    def test_negative_8(self):
        assert sign_extend(0x80, 8) == -128

    def test_zero(self):
        assert sign_extend(0, 32) == 0

    def test_masks_upper_bits(self):
        assert sign_extend(0x1_0001, 16) == 1

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)

    @given(st.integers(min_value=-(2**15), max_value=2**15 - 1))
    def test_roundtrip_16(self, value):
        assert sign_extend(value & 0xFFFF, 16) == value

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_roundtrip_32(self, value):
        assert sign_extend(value & MASK32, 32) == value


class TestSigned32:
    def test_minus_one(self):
        assert to_signed32(0xFFFFFFFF) == -1

    def test_min_int(self):
        assert to_signed32(0x80000000) == -(2**31)

    def test_max_int(self):
        assert to_signed32(0x7FFFFFFF) == 2**31 - 1

    @given(st.integers())
    def test_to_unsigned_range(self, value):
        assert 0 <= to_unsigned32(value) <= MASK32

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_signed_unsigned_roundtrip(self, value):
        assert to_signed32(to_unsigned32(value)) == value


class TestFits:
    def test_signed_16_bounds(self):
        assert fits_signed(32767, 16)
        assert fits_signed(-32768, 16)
        assert not fits_signed(32768, 16)
        assert not fits_signed(-32769, 16)

    def test_unsigned_16_bounds(self):
        assert fits_unsigned(0, 16)
        assert fits_unsigned(65535, 16)
        assert not fits_unsigned(-1, 16)
        assert not fits_unsigned(65536, 16)


class TestBitFields:
    def test_extract_top_byte(self):
        assert extract_bits(0xABCD1234, 31, 24) == 0xAB

    def test_extract_low_bit(self):
        assert extract_bits(0b1011, 0, 0) == 1

    def test_extract_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            extract_bits(0, 3, 5)

    def test_insert_replaces_field(self):
        assert insert_bits(0xFFFFFFFF, 15, 8, 0) == 0xFFFF00FF

    def test_insert_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            insert_bits(0, 3, 0, 16)

    @given(st.integers(min_value=0, max_value=MASK32),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31))
    def test_insert_extract_roundtrip(self, word, a, b):
        hi, lo = max(a, b), min(a, b)
        value = extract_bits(word, hi, lo)
        assert insert_bits(word, hi, lo, value) == word
