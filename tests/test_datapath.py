"""Unit tests for functional instruction execution."""

import pytest

from repro.cpu.datapath import execute
from repro.cpu.exceptions import SimulationError
from repro.cpu.memory import Memory
from repro.cpu.state import CpuState
from repro.isa.instructions import Instruction


@pytest.fixture()
def ctx():
    state = CpuState(entry_point=0x100)
    memory = Memory(size=4096)
    return state, memory


def run(state, memory, inst):
    return execute(inst, state, memory)


class TestAluOps:
    def test_add(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 3
        state.regs["t1"] = 4
        out = run(state, memory, Instruction("add", rd=10, rs=8, rt=9))
        assert state.regs["t2"] == 7
        assert out.next_pc == 0x104
        assert not out.taken

    def test_sub_wraps(self, ctx):
        state, memory = ctx
        state.regs["t1"] = 5
        run(state, memory, Instruction("sub", rd=8, rs=0, rt=9))
        assert state.regs.read_signed(8) == -5

    def test_addi_sign_extended(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 10
        run(state, memory, Instruction("addi", rt=9, rs=8, imm=-3))
        assert state.regs["t1"] == 7

    def test_slti_signed(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 0xFFFFFFFF  # -1
        run(state, memory, Instruction("slti", rt=9, rs=8, imm=0))
        assert state.regs["t1"] == 1

    def test_andi_zero_extended(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 0xFFFF_00FF
        run(state, memory, Instruction("andi", rt=9, rs=8, imm=0xFFFF))
        assert state.regs["t1"] == 0x00FF

    def test_lui(self, ctx):
        state, memory = ctx
        run(state, memory, Instruction("lui", rt=8, imm=0x1234))
        assert state.regs["t0"] == 0x12340000

    def test_nor(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 0x0F0F0F0F
        run(state, memory, Instruction("nor", rd=9, rs=8, rt=0))
        assert state.regs["t1"] == 0xF0F0F0F0

    def test_zero_register_immutable(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 7
        run(state, memory, Instruction("add", rd=0, rs=8, rt=8))
        assert state.regs["zero"] == 0


class TestNegativeImmediates:
    """Sign extension of the semantic immediate onto the 32-bit datapath.

    The signed and "unsigned" I-format handlers were once separate,
    byte-identical functions; these pin the actual MIPS semantics for
    negative immediates through the single collapsed handler.
    """

    def test_addi_negative_wraps_through_zero(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 2
        run(state, memory, Instruction("addi", rt=9, rs=8, imm=-5))
        assert state.regs.read_signed(9) == -3
        assert state.regs["t1"] == 0xFFFFFFFD

    def test_slti_negative_immediate_is_signed(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 0xFFFFFFF6  # -10
        run(state, memory, Instruction("slti", rt=9, rs=8, imm=-5))
        assert state.regs["t1"] == 1   # -10 < -5
        run(state, memory, Instruction("slti", rt=9, rs=8, imm=-20))
        assert state.regs["t1"] == 0   # -10 >= -20

    def test_sltiu_compares_sign_extended_unsigned(self, ctx):
        state, memory = ctx
        # MIPS sltiu: imm sign-extends, then compares unsigned, so -1
        # becomes 0xFFFFFFFF — almost everything is below it.
        state.regs["t0"] = 5
        run(state, memory, Instruction("sltiu", rt=9, rs=8, imm=-1))
        assert state.regs["t1"] == 1
        state.regs["t0"] = 0xFFFFFFFF
        run(state, memory, Instruction("sltiu", rt=9, rs=8, imm=-1))
        assert state.regs["t1"] == 0


class TestShifts:
    def test_sll_imm(self, ctx):
        state, memory = ctx
        state.regs["t1"] = 1
        run(state, memory, Instruction("sll", rd=8, rt=9, shamt=4))
        assert state.regs["t0"] == 16

    def test_srav_by_register(self, ctx):
        state, memory = ctx
        state.regs["t1"] = 0x80000000
        state.regs["t2"] = 31
        run(state, memory, Instruction("srav", rd=8, rt=9, rs=10))
        assert state.regs["t0"] == 0xFFFFFFFF


class TestLoadsStores:
    def test_lw_sw(self, ctx):
        state, memory = ctx
        state.regs["sp"] = 256
        state.regs["t0"] = 0xCAFEBABE
        run(state, memory, Instruction("sw", rt=8, rs=29, imm=8))
        out = run(state, memory, Instruction("lw", rt=9, rs=29, imm=8))
        assert state.regs["t1"] == 0xCAFEBABE
        assert out.load_dest == 9

    def test_lb_sign_extends(self, ctx):
        state, memory = ctx
        memory.store_byte(100, 0xFF)
        state.regs["t0"] = 100
        run(state, memory, Instruction("lb", rt=9, rs=8, imm=0))
        assert state.regs.read_signed(9) == -1

    def test_lbu_zero_extends(self, ctx):
        state, memory = ctx
        memory.store_byte(100, 0xFF)
        state.regs["t0"] = 100
        run(state, memory, Instruction("lbu", rt=9, rs=8, imm=0))
        assert state.regs["t1"] == 255

    def test_store_has_no_load_dest(self, ctx):
        state, memory = ctx
        state.regs["sp"] = 64
        out = run(state, memory, Instruction("sw", rt=8, rs=29, imm=0))
        assert out.load_dest is None

    def test_load_to_zero_has_no_interlock(self, ctx):
        state, memory = ctx
        state.regs["sp"] = 64
        out = run(state, memory, Instruction("lw", rt=0, rs=29, imm=0))
        assert out.load_dest is None


class TestBranches:
    def test_bne_taken(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 1
        out = run(state, memory, Instruction("bne", rs=8, rt=0, imm=-4))
        assert out.taken
        assert out.next_pc == 0x100 + 4 - 16

    def test_bne_not_taken(self, ctx):
        state, memory = ctx
        out = run(state, memory, Instruction("bne", rs=8, rt=0, imm=-4))
        assert not out.taken
        assert out.next_pc == 0x104

    def test_beq_signed_comparison(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 0xFFFFFFFF
        state.regs["t1"] = 0xFFFFFFFF
        out = run(state, memory, Instruction("beq", rs=8, rt=9, imm=2))
        assert out.taken

    def test_bltz(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 0x80000000
        out = run(state, memory, Instruction("bltz", rs=8, imm=1))
        assert out.taken

    def test_bgez_on_zero(self, ctx):
        state, memory = ctx
        out = run(state, memory, Instruction("bgez", rs=8, imm=1))
        assert out.taken

    def test_blez_bgtz(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 5
        assert run(state, memory, Instruction("bgtz", rs=8, imm=1)).taken
        assert not run(state, memory, Instruction("blez", rs=8, imm=1)).taken


class TestDbne:
    def test_taken_while_nonzero(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 3
        out = run(state, memory, Instruction("dbne", rs=8, imm=-2))
        assert state.regs["t0"] == 2
        assert out.taken

    def test_falls_through_at_zero(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 1
        out = run(state, memory, Instruction("dbne", rs=8, imm=-2))
        assert state.regs["t0"] == 0
        assert not out.taken

    def test_wraps_from_zero(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 0
        out = run(state, memory, Instruction("dbne", rs=8, imm=-2))
        assert state.regs["t0"] == 0xFFFFFFFF
        assert out.taken


class TestJumps:
    def test_j(self, ctx):
        state, memory = ctx
        out = run(state, memory, Instruction("j", target=0x80 // 4))
        assert out.next_pc == 0x80
        assert out.taken

    def test_jal_links(self, ctx):
        state, memory = ctx
        run(state, memory, Instruction("jal", target=0x80 // 4))
        assert state.regs["ra"] == 0x104

    def test_jr(self, ctx):
        state, memory = ctx
        state.regs["ra"] = 0x200
        out = run(state, memory, Instruction("jr", rs=31))
        assert out.next_pc == 0x200

    def test_jalr(self, ctx):
        state, memory = ctx
        state.regs["t0"] = 0x300
        run(state, memory, Instruction("jalr", rd=31, rs=8))
        assert state.regs["ra"] == 0x104


class TestSystem:
    def test_halt_sets_flag(self, ctx):
        state, memory = ctx
        run(state, memory, Instruction("halt"))
        assert state.halted

    def test_mtz_without_zolc_raises(self, ctx):
        state, memory = ctx
        with pytest.raises(SimulationError):
            run(state, memory, Instruction("mtz", rt=8, imm=0x100))

    def test_unknown_mnemonic_raises(self, ctx):
        state, memory = ctx
        with pytest.raises(SimulationError):
            run(state, memory, Instruction("halt2"))
