"""Shim for toolchains without PEP 660 editable-install support.

All real metadata lives in pyproject.toml; modern pip ignores this file.
"""

from setuptools import setup

setup()
